//! Microbenchmarks of the simulation kernels every experiment leans on:
//! the event queue, the image-method ray tracer, phased-array synthesis,
//! pattern lookups, the PER model, the frame detector and the TCP pump.

use mmwave_bench::{bench, black_box};
use mmwave_capture::trace::{SegmentTag, TraceSegment};
use mmwave_capture::{detect_frames, DetectorConfig, SignalTrace};
use mmwave_geom::{trace_paths, Angle, Material, Point, Room, TraceConfig};
use mmwave_phy::{ArrayConfig, Codebook, McsTable, PhasedArray};
use mmwave_sim::queue::EventQueue;
use mmwave_sim::rng::SimRng;
use mmwave_sim::time::SimTime;

fn bench_event_queue() {
    bench("event_queue/schedule_pop_10k", || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });
}

fn bench_raytrace() {
    let room = Room::rectangular(
        9.0,
        3.25,
        (Material::Wood, Material::Glass, Material::Brick, Material::Brick),
    );
    let cfg = TraceConfig::default();
    bench("raytrace/conference_room_order2", || {
        trace_paths(
            &room,
            black_box(Point::new(0.5, 1.3)),
            black_box(Point::new(8.5, 1.3)),
            &cfg,
        )
    });
}

fn bench_array_synthesis() {
    let array = PhasedArray::new(ArrayConfig::wigig_2x8(13));
    bench("phy/steered_pattern", || {
        array.steered_pattern(black_box(Angle::from_degrees(17.0)))
    });
    bench("phy/directional_codebook_32", || Codebook::directional_default(&array));
    let pattern = array.steered_pattern(Angle::ZERO);
    let mut deg = 0.0;
    bench("phy/pattern_gain_lookup", move || {
        deg += 0.37;
        pattern.gain_dbi(Angle::from_degrees(deg))
    });
}

fn bench_per() {
    let table = McsTable::ieee_802_11ad();
    let mut snr = 0.0;
    bench("phy/per_evaluation", move || {
        snr += 0.01;
        table.get(11).per(10.0 + (snr % 15.0), 86_352, -71.5)
    });
}

fn bench_detector() {
    // A 1 ms trace with 20 frames, sampled at 100 MS/s.
    let mut trace = SignalTrace::new(SimTime::ZERO, SimTime::from_millis(1), 0.01);
    for i in 0..20u64 {
        trace.push(TraceSegment {
            start: SimTime::from_micros(i * 50 + 5),
            end: SimTime::from_micros(i * 50 + 25),
            amplitude_v: 0.3,
            tag: SegmentTag { source: 0, class: 3 },
        });
    }
    let mut rng = SimRng::root(1).stream("bench");
    let (period, samples) = trace.sample(1e8, &mut rng);
    bench("capture/detect_100k_samples", || {
        detect_frames(
            black_box(&samples),
            period,
            SimTime::ZERO,
            0.01,
            &DetectorConfig::default(),
        )
    });
    let mut rng2 = SimRng::root(2).stream("bench2");
    bench("capture/sample_1ms_trace", move || trace.sample(1e8, &mut rng2));
}

fn bench_mac_second() {
    use mmwave_channel::Environment;
    use mmwave_mac::{Device, Net, NetConfig};
    bench("mac/idle_link_100ms", || {
        let mut net = Net::new(
            Environment::new(Room::open_space()),
            NetConfig { seed: 1, enable_fading: false, ..NetConfig::default() },
        );
        let dock = net.add_device(Device::wigig_dock("d", Point::new(0.0, 0.0), Angle::ZERO, 13));
        let laptop = net.add_device(Device::wigig_laptop(
            "l",
            Point::new(2.0, 0.0),
            Angle::from_degrees(180.0),
            11,
        ));
        net.associate_instantly(dock, laptop);
        net.run_until(SimTime::from_millis(100));
        net.txlog().len()
    });
}

fn bench_tcp_second() {
    use mmwave_channel::Environment;
    use mmwave_mac::{Device, Net, NetConfig};
    use mmwave_transport::{Stack, TcpConfig};
    bench("transport/tcp_100ms_full_rate", || {
        let mut net = Net::new(
            Environment::new(Room::open_space()),
            NetConfig { seed: 1, enable_fading: false, ..NetConfig::default() },
        );
        net.txlog_mut().set_enabled(false);
        let dock = net.add_device(Device::wigig_dock("d", Point::new(0.0, 0.0), Angle::ZERO, 13));
        let laptop = net.add_device(Device::wigig_laptop(
            "l",
            Point::new(2.0, 0.0),
            Angle::from_degrees(180.0),
            11,
        ));
        net.associate_instantly(dock, laptop);
        let mut stack = Stack::new(net);
        let flow = stack.add_flow(TcpConfig::bulk(dock, laptop, 256 * 1024));
        stack.run_until(SimTime::from_millis(100));
        stack.flow_stats(flow).bytes_acked
    });
}

fn main() {
    bench_event_queue();
    bench_raytrace();
    bench_array_synthesis();
    bench_per();
    bench_detector();
    bench_mac_second();
    bench_tcp_second();
}
