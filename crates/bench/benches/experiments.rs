//! One benchmark per paper table/figure: each target runs the exact
//! regeneration code (`mmwave_core::experiments` in quick mode) and
//! reports how long reproducing that artifact takes. `cargo bench` output
//! therefore doubles as a full-reproduction smoke run — a benched
//! experiment that started violating its shape checks panics.

use mmwave_bench::bench;
use mmwave_core::experiments;

fn run_checked(id: &str) -> usize {
    let report = experiments::run(id, true, 1).expect("known id");
    assert!(
        report.passed(),
        "{id} shape checks failed during bench:\n{}",
        report.violations.join("\n")
    );
    report.output.len()
}

fn main() {
    // Fast artifacts.
    for id in [
        "table1", "fig03", "fig08", "fig15", "fig16", "fig17", "fig18", "fig19",
    ] {
        bench(&format!("artifact/{id}"), || run_checked(id));
    }
    // Medium artifacts. Note: fig09/fig10/fig11/aggr share one cached TCP
    // sweep, so their per-iteration numbers reflect the (cheap) analysis
    // over the cached campaign; the campaign itself is paid once during
    // the calibration run.
    for id in ["fig09", "fig10", "fig11", "aggr", "fig12", "fig20", "fig21"] {
        bench(&format!("artifact/{id}"), || run_checked(id));
    }
    // Slow artifacts: the full campaigns behind Figs. 13, 14, 22 and 23
    // take seconds per run even in quick mode; the harness degrades to one
    // iteration per sample for these, keeping `cargo bench` tractable.
    for id in ["fig13", "fig14", "fig22", "fig23"] {
        bench(&format!("artifact/{id}"), || run_checked(id));
    }
}
