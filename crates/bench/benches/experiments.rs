//! One benchmark per paper table/figure: each target runs the exact
//! regeneration code (`mmwave_core::experiments::run` in quick mode) and
//! reports how long reproducing that artifact takes. `cargo bench` output
//! therefore doubles as a full-reproduction smoke run — a benched
//! experiment that started violating its shape checks panics.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mmwave_core::experiments;

fn run_checked(id: &str) -> usize {
    let report = experiments::run(id, true, 1).expect("known id");
    assert!(
        report.passed(),
        "{id} shape checks failed during bench:\n{}",
        report.violations.join("\n")
    );
    report.output.len()
}

fn bench_fast_artifacts(c: &mut Criterion) {
    let mut g = c.benchmark_group("artifact");
    g.sample_size(10);
    for id in ["table1", "fig03", "fig08", "fig15", "fig16", "fig17", "fig18", "fig19"] {
        g.bench_with_input(BenchmarkId::from_parameter(id), id, |b, id| {
            b.iter(|| black_box(run_checked(id)))
        });
    }
    g.finish();
}

fn bench_medium_artifacts(c: &mut Criterion) {
    let mut g = c.benchmark_group("artifact");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(20));
    // Note: fig09/fig10/fig11/aggr share one cached TCP sweep, so their
    // per-iteration numbers reflect the (cheap) analysis over the cached
    // campaign; the campaign itself is paid once during warm-up.
    for id in ["fig09", "fig10", "fig11", "aggr", "fig12", "fig20", "fig21"] {
        g.bench_with_input(BenchmarkId::from_parameter(id), id, |b, id| {
            b.iter(|| black_box(run_checked(id)))
        });
    }
    g.finish();
}

fn bench_slow_artifacts(c: &mut Criterion) {
    let mut g = c.benchmark_group("artifact");
    // The full campaigns behind Figs. 13, 14, 22 and 23 take seconds per
    // run even in quick mode; one measured iteration per sample keeps
    // `cargo bench` tractable while still timing the real regenerators.
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(60));
    for id in ["fig13", "fig14", "fig22", "fig23"] {
        g.bench_with_input(BenchmarkId::from_parameter(id), id, |b, id| {
            b.iter(|| black_box(run_checked(id)))
        });
    }
    g.finish();
}

criterion_group!(artifacts, bench_fast_artifacts, bench_medium_artifacts, bench_slow_artifacts);
criterion_main!(artifacts);
