//! Std-only micro-benchmark harness.
//!
//! The workspace builds in hermetic environments with no crates.io access,
//! so the benches are driven by this small timing loop instead of
//! criterion. The API is deliberately tiny: [`bench`] auto-calibrates an
//! iteration count against a time target, prints min/median/mean
//! per-iteration wall time, and records the statistics in a process-wide
//! registry that [`write_json`] serializes as a machine-readable
//! trajectory (`BENCH_kernels.json` at the repo root). [`black_box`]
//! re-exports `std::hint::black_box` so bench bodies read like the
//! criterion originals.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Schema tag stamped into the JSON trajectory.
pub const BENCH_SCHEMA: &str = "mmwave-bench/1";

/// Allocation-counting wrapper around the system allocator.
///
/// A bench binary opts in with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`
/// after which [`bench`] attributes heap-allocation *events* (`alloc`,
/// `alloc_zeroed`, `realloc` — frees are not events) to each benchmark as
/// `allocs_per_iter`. The counter is a single relaxed `fetch_add`, cheap
/// enough to leave on for every measurement; without the attribute the
/// counter stays at zero and the column reads 0.0 everywhere.
pub struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Allocation events since process start. Zero for the whole run unless
/// the binary installed [`CountingAlloc`] as its global allocator.
pub fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Tuning knobs for the measurement loop.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Target wall time for the measured phase of one benchmark.
    pub target: Duration,
    /// Samples (batches) collected per benchmark.
    pub samples: usize,
    /// Minimum iterations per sample, enforced as long as the whole
    /// measured phase stays within `budget_cap`. Kernels in the
    /// milliseconds band otherwise calibrate to 1–3 iterations per
    /// sample, where every sample is hostage to a single scheduler
    /// preemption and the recorded median wanders by double-digit
    /// percentages between runs.
    pub min_iters: u32,
    /// Upper bound on the measured phase when `min_iters` inflates it.
    /// Second-scale bodies (full experiment regenerations) stay at one
    /// iteration per sample rather than blowing through this cap.
    pub budget_cap: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            target: Duration::from_millis(300),
            samples: 10,
            min_iters: 8,
            budget_cap: Duration::from_secs(4),
        }
    }
}

/// Per-iteration statistics for one benchmark, in nanoseconds.
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub name: String,
    /// Iterations per timed sample after calibration.
    pub iters: u32,
    pub min_ns: f64,
    pub median_ns: f64,
    pub mean_ns: f64,
    /// Heap-allocation events per iteration across the measured phase
    /// (warm-up excluded). Exactly 0.0 means the steady state never
    /// touched the allocator; requires [`CountingAlloc`] to be installed,
    /// else always 0.0.
    pub allocs_per_iter: f64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Time `f` with the default config, printing per-iteration statistics
/// and recording them in the registry.
///
/// Calibration: `f` is run once to estimate its cost, then an iteration
/// count per sample is chosen so all samples together hit roughly the
/// config's target. Slow bodies (> target / samples) degrade to one
/// iteration per sample, so second-scale experiment regenerations stay
/// tractable.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) -> BenchResult {
    bench_with(BenchConfig::default(), name, f)
}

/// [`bench`] with explicit tuning — tiny targets keep harness self-tests
/// fast.
pub fn bench_with<T>(cfg: BenchConfig, name: &str, mut f: impl FnMut() -> T) -> BenchResult {
    // Warm-up + calibration run.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));

    let samples = cfg.samples.max(1);
    let per_sample = cfg.target.as_nanos() / samples as u128;
    let mut iters = (per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000) as u32;
    if iters < cfg.min_iters {
        // Minimum measurement budget: lift slow-but-not-glacial kernels
        // to `min_iters` iterations per sample so one preemption cannot
        // dominate a sample, but never past what `budget_cap` affords.
        let affordable = cfg.budget_cap.as_nanos() / (samples as u128 * once.as_nanos().max(1));
        iters = iters.max(affordable.min(cfg.min_iters as u128).max(1) as u32);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    // The sample vector is pre-sized and the timing calls are
    // allocation-free, so every event in this window belongs to `f`.
    let allocs_before = alloc_events();
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_iter.push(t.elapsed().as_secs_f64() / iters as f64);
    }
    let allocs = alloc_events() - allocs_before;
    let allocs_per_iter = allocs as f64 / (samples as f64 * iters as f64);
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<44} {iters:>7} it/sample   min {}  median {}  mean {}  allocs {allocs_per_iter:>7.1}/it",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean)
    );
    let result = BenchResult {
        name: name.to_string(),
        iters,
        min_ns: min * 1e9,
        median_ns: median * 1e9,
        mean_ns: mean * 1e9,
        allocs_per_iter,
    };
    RESULTS.lock().expect("bench registry").push(result.clone());
    result
}

/// Snapshot of every result recorded so far, in execution order.
pub fn results() -> Vec<BenchResult> {
    RESULTS.lock().expect("bench registry").clone()
}

/// Drop all recorded results (test isolation).
pub fn clear_results() {
    RESULTS.lock().expect("bench registry").clear();
}

/// Render the registry as a JSON trajectory document.
///
/// Hand-rolled like the campaign artifacts: two-space indent, results in
/// execution order, nanosecond floats with enough digits to round-trip.
pub fn results_json() -> String {
    let results = RESULTS.lock().expect("bench registry");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
    out.push_str("  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": {}, \"iters_per_sample\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"allocs_per_iter\": {}}}",
            json_string(&r.name),
            r.iters,
            json_num(r.min_ns),
            json_num(r.median_ns),
            json_num(r.mean_ns),
            json_num(r.allocs_per_iter),
        ));
    }
    if !results.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Write [`results_json`] to `path`.
pub fn write_json(path: &Path) -> io::Result<()> {
    std::fs::write(path, results_json())
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    // ns values are always finite and non-negative here; keep one decimal
    // for sub-ns resolution without drowning the file in digits.
    format!("{v:.1}")
}

/// Human-friendly duration with a stable width.
fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>8.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>8.2} ms", secs * 1e3)
    } else {
        format!("{:>8.3} s ", secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global and tests share a process, so the
    /// registry-shape assertions all live in this single test.
    #[test]
    fn bench_runs_records_and_serializes() {
        clear_results();
        let quick = BenchConfig {
            target: Duration::from_micros(200),
            samples: 3,
            ..BenchConfig::default()
        };
        let r = bench_with(quick, "test/noop", || 1u64 + 1);
        assert_eq!(r.name, "test/noop");
        assert!(r.min_ns >= 0.0 && r.min_ns <= r.mean_ns * 1.0001 + 1.0);
        bench_with(quick, "test/\"quoted\"", || black_box(2u64).pow(3));

        let all = results();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "test/noop");

        let json = results_json();
        assert!(json.contains("\"schema\": \"mmwave-bench/1\""));
        assert!(json.contains("\"name\": \"test/noop\""));
        assert!(json.contains("\\\"quoted\\\""), "quotes escaped: {json}");
        assert!(json.contains("\"min_ns\""));
        assert!(json.contains("\"allocs_per_iter\""));

        // Minimum measurement budget: a body slower than target/samples
        // would calibrate to one iteration per sample; the floor lifts
        // it to `min_iters` when the budget allows...
        let floor = BenchConfig {
            target: Duration::from_micros(300),
            samples: 2,
            min_iters: 4,
            budget_cap: Duration::from_millis(100),
        };
        let r = bench_with(floor, "test/slow_floored", || {
            std::thread::sleep(Duration::from_micros(500))
        });
        assert_eq!(r.iters, 4);
        // ...and stays at what the cap affords when it does not.
        let capped = BenchConfig {
            budget_cap: Duration::from_millis(1),
            ..floor
        };
        let r = bench_with(capped, "test/slow_capped", || {
            std::thread::sleep(Duration::from_micros(500))
        });
        assert_eq!(r.iters, 1);

        clear_results();
        assert!(results().is_empty());
    }

    #[test]
    fn fmt_time_picks_units() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains("s"));
    }
}
