//! Std-only micro-benchmark harness.
//!
//! The workspace builds in hermetic environments with no crates.io access,
//! so the benches are driven by this ~80-line timing loop instead of
//! criterion. The API is deliberately tiny: [`bench`] auto-calibrates an
//! iteration count against a time target and prints min/median/mean
//! per-iteration wall time. [`black_box`] re-exports `std::hint::black_box`
//! so bench bodies read like the criterion originals.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time for the measured phase of one benchmark.
const TARGET: Duration = Duration::from_millis(300);
/// Samples (batches) collected per benchmark.
const SAMPLES: usize = 10;

/// Time `f`, printing per-iteration statistics.
///
/// Calibration: `f` is run once to estimate its cost, then an iteration
/// count per sample is chosen so all samples together hit roughly
/// [`TARGET`]. Slow bodies (> TARGET / SAMPLES) degrade to one iteration
/// per sample, so second-scale experiment regenerations stay tractable.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up + calibration run.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));

    let per_sample = TARGET.as_nanos() / SAMPLES as u128;
    let iters = (per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000) as u32;

    let mut per_iter: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_iter.push(t.elapsed().as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<44} {iters:>7} it/sample   min {}  median {}  mean {}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean)
    );
}

/// Human-friendly duration with a stable width.
fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>8.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>8.2} ms", secs * 1e3)
    } else {
        format!("{:>8.3} s ", secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        // Smoke: must not panic, even for a ~free body.
        bench("test/noop", || 1u64 + 1);
    }

    #[test]
    fn fmt_time_picks_units() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains("s"));
    }
}
