//! Bench regression gate: compare a fresh kernel-bench run against the
//! committed `BENCH_kernels.json` baseline.
//!
//! Usage: `bench_check <baseline.json> <current.json>`
//!
//! For every kernel present in both files, the current median must stay
//! within `baseline_median * (1 + tolerance)`. The tolerance defaults to
//! 1.0 (i.e. the gate trips at 2× the baseline) and can be overridden via
//! `BENCH_TOLERANCE`; the default is deliberately loose because shared
//! container timing jitters by tens of percent, while the regressions
//! this gate exists to catch — an accidentally disabled cache, a
//! reintroduced per-call allocation — cost integer multiples.
//!
//! A kernel present in the baseline but missing from the current run
//! fails the gate (the baseline is stale — somebody renamed or deleted a
//! bench without re-baselining). A kernel only in the current run is
//! listed but passes; committing a refreshed baseline starts tracking it.
//!
//! Re-baselining workflow (after an intentional perf change): run
//! `cargo bench -p mmwave-bench --bench kernels` on an otherwise idle
//! machine — it rewrites `BENCH_kernels.json` at the repo root — and
//! commit the refreshed file together with the change that moved the
//! numbers, so `git log BENCH_kernels.json` reads as the perf trajectory.

use std::process::ExitCode;

use mmwave_campaign::json::Json;

/// One kernel's medians side by side.
struct Row {
    name: String,
    baseline_ns: Option<f64>,
    current_ns: Option<f64>,
}

fn load_medians(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: missing schema"))?;
    if schema != mmwave_bench::BENCH_SCHEMA {
        return Err(format!(
            "{path}: schema '{schema}', expected '{}'",
            mmwave_bench::BENCH_SCHEMA
        ));
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing results array"))?;
    results
        .iter()
        .map(|r| {
            let name = r
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: result without name"))?;
            let median = r
                .get("median_ns")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: '{name}' without median_ns"))?;
            Ok((name.to_string(), median))
        })
        .collect()
}

fn tolerance() -> Result<f64, String> {
    match std::env::var("BENCH_TOLERANCE") {
        Ok(s) => {
            let t: f64 = s
                .parse()
                .map_err(|_| format!("BENCH_TOLERANCE '{s}' is not a number"))?;
            if !t.is_finite() || t < 0.0 {
                return Err(format!("BENCH_TOLERANCE {t} must be finite and >= 0"));
            }
            Ok(t)
        }
        Err(_) => Ok(1.0),
    }
}

fn check(baseline_path: &str, current_path: &str) -> Result<bool, String> {
    let baseline = load_medians(baseline_path)?;
    let current = load_medians(current_path)?;
    let tol = tolerance()?;

    // Baseline order first, then current-only kernels in their run order.
    let mut rows: Vec<Row> = baseline
        .iter()
        .map(|(name, b)| Row {
            name: name.clone(),
            baseline_ns: Some(*b),
            current_ns: current.iter().find(|(n, _)| n == name).map(|(_, m)| *m),
        })
        .collect();
    for (name, m) in &current {
        if !baseline.iter().any(|(n, _)| n == name) {
            rows.push(Row {
                name: name.clone(),
                baseline_ns: None,
                current_ns: Some(*m),
            });
        }
    }

    println!(
        "bench_check: tolerance +{:.0}% over baseline medians",
        tol * 100.0
    );
    println!(
        "{:<44} {:>12} {:>12} {:>8}  verdict",
        "kernel", "baseline", "current", "ratio"
    );
    let mut ok = true;
    for row in &rows {
        match (row.baseline_ns, row.current_ns) {
            (Some(b), Some(c)) => {
                let ratio = c / b;
                let pass = c <= b * (1.0 + tol);
                ok &= pass;
                println!(
                    "{:<44} {:>12} {:>12} {:>7.2}x  {}",
                    row.name,
                    fmt_ns(b),
                    fmt_ns(c),
                    ratio,
                    if pass { "ok" } else { "REGRESSED" }
                );
            }
            (Some(b), None) => {
                ok = false;
                println!(
                    "{:<44} {:>12} {:>12} {:>8}  MISSING (stale baseline?)",
                    row.name,
                    fmt_ns(b),
                    "-",
                    "-"
                );
            }
            (None, Some(c)) => {
                println!(
                    "{:<44} {:>12} {:>12} {:>8}  new (re-baseline to track)",
                    row.name,
                    "-",
                    fmt_ns(c),
                    "-"
                );
            }
            (None, None) => unreachable!("row without any median"),
        }
    }
    Ok(ok)
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{:.2} ms", ns / 1e6)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_check <baseline.json> <current.json>");
        return ExitCode::from(2);
    }
    match check(&args[1], &args[2]) {
        Ok(true) => {
            println!("bench_check: OK");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench_check: FAIL — see table above");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_check: error: {e}");
            ExitCode::from(2)
        }
    }
}
