//! The link-gain cache's core promise: memoization is invisible in every
//! emitted byte. The same campaign run with the cache enabled and in
//! bypass mode (identical interning, stamping and counters, but values
//! recomputed from first principles on every hit) must produce
//! byte-identical artifacts — including the `engine.link_gain_*`
//! counters, which fire identically in both modes by construction. A
//! stale entry surviving an invalidation would diverge some rx power and
//! show up here as a differing artifact body.
//!
//! This lives in its own integration-test binary because the default
//! cache mode is a process-global flag: campaign workers are spawned
//! threads and inherit it, so flipping it must not race other tests.

use mmwave_campaign::{artifact, runner, CampaignConfig};
use mmwave_channel::linkgain;
use mmwave_core::experiments;

/// Cheap experiments that do not touch the process-global TCP-sweep
/// cache: the first campaign would otherwise hand memoized sweep results
/// (with their recorded counters) to the second, and the comparison
/// would no longer exercise the link-gain cache end to end. `dynblock`
/// adds a dynamic scenario (scripted blockage with cache invalidations
/// mid-run) to the matrix.
fn subset() -> Vec<&'static experiments::Experiment> {
    ["table1", "fig03", "fig08", "fig15", "dynblock"]
        .iter()
        .map(|id| experiments::find(id).expect("registered"))
        .collect()
}

fn normalized_artifacts(bypass: bool) -> Vec<(String, String)> {
    // Exclusive + restore-on-drop: holds the global-flag lock for the
    // whole campaign so concurrent tests cannot observe the flip.
    let _mode = linkgain::scoped_default_bypass(bypass);
    let cfg = CampaignConfig {
        experiments: subset(),
        seeds: vec![1, 2],
        quick: true,
        jobs: 2,
    };
    let result = runner::run(&cfg);
    let mut files = Vec::new();
    let mut manifest = artifact::manifest_to_json(&result);
    artifact::normalize_execution(&mut manifest);
    files.push(("manifest.json".to_string(), manifest.render()));
    for r in &result.records {
        let mut j = artifact::run_to_json(r);
        artifact::normalize_execution(&mut j);
        files.push((
            artifact::run_artifact_name(&r.experiment, r.seed),
            j.render(),
        ));
    }
    files
}

#[test]
fn artifacts_identical_with_cache_and_in_bypass_mode() {
    let cached = normalized_artifacts(false);
    let bypassed = normalized_artifacts(true);
    assert_eq!(cached.len(), bypassed.len());
    for ((name_a, body_a), (name_b, body_b)) in cached.iter().zip(&bypassed) {
        assert_eq!(name_a, name_b, "artifact order must match");
        assert_eq!(
            body_a, body_b,
            "artifact {name_a} differs between cached and bypass runs"
        );
    }
}
