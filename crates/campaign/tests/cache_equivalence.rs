//! The link-gain cache's core promise: memoization is invisible in every
//! emitted byte. The same campaign run with the cache enabled and in
//! bypass mode (identical interning, stamping and counters, but values
//! recomputed from first principles on every hit) must produce
//! byte-identical artifacts — including the `engine.link_gain_*`
//! counters, which fire identically in both modes by construction. A
//! stale entry surviving an invalidation would diverge some rx power and
//! show up here as a differing artifact body.
//!
//! The cache mode is per-task state: [`runner::run_with_cache_mode`]
//! stamps it into every task's [`SimCtx`], so the two campaigns coexist
//! with any other test without shared flags.
//!
//! [`SimCtx`]: mmwave_sim::ctx::SimCtx

use mmwave_campaign::{artifact, runner, CampaignConfig};
use mmwave_core::experiments;
use mmwave_sim::ctx::CacheMode;

/// Cheap experiments that do not touch the process-global TCP-sweep
/// cache: the first campaign would otherwise hand memoized sweep results
/// (with their recorded counters) to the second, and the comparison
/// would no longer exercise the link-gain cache end to end. `dynblock`
/// adds a dynamic scenario (scripted blockage with cache invalidations
/// mid-run) to the matrix.
fn subset() -> Vec<&'static experiments::Experiment> {
    ["table1", "fig03", "fig08", "fig15", "dynblock"]
        .iter()
        .map(|id| experiments::find(id).expect("registered"))
        .collect()
}

fn normalized_artifacts(mode: CacheMode) -> Vec<(String, String)> {
    let cfg = CampaignConfig {
        experiments: subset(),
        seeds: vec![1, 2],
        quick: true,
        jobs: 2,
        cc: None,
        prune: None,
    };
    artifact::canonical_artifacts(&runner::run_with_cache_mode(&cfg, mode))
}

#[test]
fn artifacts_identical_with_cache_and_in_bypass_mode() {
    let cached = normalized_artifacts(CacheMode::Cached);
    let bypassed = normalized_artifacts(CacheMode::Bypass);
    assert_eq!(cached.len(), bypassed.len());
    for ((name_a, body_a), (name_b, body_b)) in cached.iter().zip(&bypassed) {
        assert_eq!(name_a, name_b, "artifact order must match");
        assert_eq!(
            body_a, body_b,
            "artifact {name_a} differs between cached and bypass runs"
        );
    }
}
