//! Crash-recovery contract of the streaming control plane: after damage
//! to the artifact directory (a deleted chunk, a corrupted chunk, a
//! manifest torn mid-append — i.e. a campaign killed at an arbitrary
//! instant), a `--resume` rerun
//!
//! 1. re-executes ONLY the damaged tasks (hash-clean chunks are skipped),
//! 2. and converges to the same artifact bytes as an undamaged fresh run
//!    (modulo execution metadata, which is honest about what happened:
//!    `tasks_resumed` counts the skips).

use mmwave_campaign::control::{self, ControlOpts};
use mmwave_campaign::{artifact, manifest, CampaignConfig};
use mmwave_core::experiments;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn cfg() -> CampaignConfig {
    CampaignConfig {
        experiments: ["table1", "fig03", "fig08", "fig15"]
            .iter()
            .map(|id| experiments::find(id).expect("registered"))
            .collect(),
        seeds: vec![1, 2],
        quick: true,
        jobs: 2,
        cc: None,
        prune: None,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mmwave-resume-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every artifact file, normalized (execution metadata zeroed) so fresh
/// and resumed runs are comparable byte-for-byte.
fn canonical_tree(out: &Path) -> BTreeMap<String, String> {
    let mut files = BTreeMap::new();
    let manifest_text = std::fs::read_to_string(out.join("manifest.json")).expect("manifest.json");
    files.insert(
        "manifest.json".to_string(),
        artifact::canonicalize_text(&manifest_text).expect("canonical manifest"),
    );
    for entry in std::fs::read_dir(out.join("runs")).expect("runs dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().into_string().expect("utf8 name");
        let text = std::fs::read_to_string(entry.path()).expect("chunk");
        files.insert(
            format!("runs/{name}"),
            artifact::canonicalize_text(&text).expect("canonical chunk"),
        );
    }
    files
}

#[test]
fn resume_reexecutes_only_damaged_tasks_and_converges_bytewise() {
    let fresh_dir = tmp_dir("fresh");
    let damaged_dir = tmp_dir("damaged");
    let opts = ControlOpts::default();

    // Reference: one undamaged streaming run.
    let fresh =
        control::run_streaming(&cfg(), &fresh_dir, &opts).expect("fresh reference campaign");
    assert!(fresh.result.all_passed());
    assert_eq!(fresh.result.chunks_streamed, 8);
    let want = canonical_tree(&fresh_dir);

    // Victim: same campaign, then three independent kinds of damage.
    let first = control::run_streaming(&cfg(), &damaged_dir, &opts).expect("victim campaign");
    assert!(first.result.all_passed());

    // (a) one chunk deleted outright,
    let deleted = ("table1".to_string(), 2u64);
    std::fs::remove_file(damaged_dir.join(artifact::run_artifact_name(&deleted.0, deleted.1)))
        .expect("delete chunk");

    // (b) one chunk corrupted in place (hash must catch it),
    let corrupted = ("fig08".to_string(), 1u64);
    let victim_path = damaged_dir.join(artifact::run_artifact_name(&corrupted.0, corrupted.1));
    let mut bytes = std::fs::read(&victim_path).expect("read chunk");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&victim_path, &bytes).expect("corrupt chunk");

    // (c) the ledger truncated mid-entry, as if the process died inside an
    // append. The half-written line names a real completed task: that
    // task loses its ledger entry and must re-execute.
    let ledger_path = damaged_dir.join(manifest::MANIFEST_FILE_NAME);
    let ledger = std::fs::read_to_string(&ledger_path).expect("read ledger");
    let last_line = ledger.lines().last().expect("nonempty ledger");
    let torn = manifest::ChunkEntry::parse(&format!("{last_line}\n")).expect("parseable tail");
    std::fs::write(
        &ledger_path,
        &ledger[..ledger.len() - last_line.len() / 2 - 1],
    )
    .expect("tear ledger");
    let torn_key = (torn.experiment.clone(), torn.seed);
    assert_ne!(torn_key, deleted, "damage must hit three distinct tasks");
    assert_ne!(torn_key, corrupted, "damage must hit three distinct tasks");

    // Resume: exactly the three damaged tasks re-execute.
    let resumed = control::run_streaming(
        &cfg(),
        &damaged_dir,
        &ControlOpts {
            resume: true,
            ..ControlOpts::default()
        },
    )
    .expect("resumed campaign");
    let mut expected_rerun = vec![deleted, corrupted, torn_key];
    expected_rerun.sort();
    let mut executed = resumed.executed.clone();
    executed.sort();
    assert_eq!(executed, expected_rerun, "only damaged tasks re-execute");
    assert_eq!(
        resumed.resumed.len(),
        5,
        "the hash-clean majority is skipped"
    );
    assert_eq!(resumed.result.tasks_resumed, 5);
    assert_eq!(resumed.result.chunks_streamed, 3);

    // And the repaired tree is byte-identical to the fresh one.
    assert_eq!(canonical_tree(&damaged_dir), want);

    std::fs::remove_dir_all(&fresh_dir).ok();
    std::fs::remove_dir_all(&damaged_dir).ok();
}

#[test]
fn resume_with_clean_artifacts_executes_nothing() {
    let dir = tmp_dir("clean");
    let opts = ControlOpts::default();
    let first = control::run_streaming(&cfg(), &dir, &opts).expect("first run");
    assert!(first.result.all_passed());
    let want = canonical_tree(&dir);

    let resumed = control::run_streaming(
        &cfg(),
        &dir,
        &ControlOpts {
            resume: true,
            ..ControlOpts::default()
        },
    )
    .expect("clean resume");
    assert!(resumed.executed.is_empty(), "nothing was damaged");
    assert_eq!(resumed.resumed.len(), 8);
    assert_eq!(canonical_tree(&dir), want);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_ignores_manifests_from_a_different_matrix() {
    let dir = tmp_dir("fingerprint");
    let opts = ControlOpts::default();
    control::run_streaming(&cfg(), &dir, &opts).expect("first run");

    // Same directory, different seed list: the fingerprint differs, so
    // nothing may be resumed even though chunk files exist.
    let mut other = cfg();
    other.seeds = vec![1];
    let resumed = control::run_streaming(
        &other,
        &dir,
        &ControlOpts {
            resume: true,
            ..ControlOpts::default()
        },
    )
    .expect("mismatched resume");
    assert!(
        resumed.resumed.is_empty(),
        "fingerprint mismatch resumes nothing"
    );
    assert_eq!(resumed.executed.len(), 4);
    std::fs::remove_dir_all(&dir).ok();
}
