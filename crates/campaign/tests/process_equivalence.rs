//! The process-sharding promise: running the campaign across `campaign
//! worker` subprocesses produces artifact bytes identical to the
//! in-process thread pool. Scheduling, pipe framing, and process
//! boundaries are execution details — every chunk and the manifest must
//! match byte for byte once execution metadata (wall times, worker
//! counts) is normalized out.
//!
//! This drives the REAL worker binary (`CARGO_BIN_EXE_campaign`), not an
//! in-process stub: the bytes cross an actual pipe, round-trip through
//! the wire codec, and come back equal.

use mmwave_campaign::control::{self, ControlOpts};
use mmwave_campaign::{artifact, CampaignConfig};
use mmwave_core::experiments;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn cfg() -> CampaignConfig {
    CampaignConfig {
        experiments: ["table1", "fig03", "fig08", "fig15", "fig09"]
            .iter()
            .map(|id| experiments::find(id).expect("registered"))
            .collect(),
        seeds: vec![1, 2],
        quick: true,
        jobs: 1,
        cc: None,
        prune: None,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mmwave-proceq-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn canonical_tree(out: &Path) -> BTreeMap<String, String> {
    let mut files = BTreeMap::new();
    let manifest_text = std::fs::read_to_string(out.join("manifest.json")).expect("manifest.json");
    files.insert(
        "manifest.json".to_string(),
        artifact::canonicalize_text(&manifest_text).expect("canonical manifest"),
    );
    for entry in std::fs::read_dir(out.join("runs")).expect("runs dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().into_string().expect("utf8 name");
        let text = std::fs::read_to_string(entry.path()).expect("chunk");
        files.insert(
            format!("runs/{name}"),
            artifact::canonicalize_text(&text).expect("canonical chunk"),
        );
    }
    files
}

#[test]
fn subprocess_workers_match_in_process_artifacts_bytewise() {
    let in_proc_dir = tmp_dir("inproc");
    let sharded_dir = tmp_dir("sharded");

    let in_proc = control::run_streaming(&cfg(), &in_proc_dir, &ControlOpts::default())
        .expect("in-process campaign");
    assert!(in_proc.result.all_passed());

    let sharded = control::run_streaming(
        &cfg(),
        &sharded_dir,
        &ControlOpts {
            workers: 2,
            resume: false,
            worker_cmd: vec![env!("CARGO_BIN_EXE_campaign").to_string(), "worker".into()],
        },
    )
    .expect("process-sharded campaign");
    assert!(sharded.result.all_passed());
    assert_eq!(sharded.result.workers, 2);
    assert_eq!(
        sharded.result.records.len(),
        in_proc.result.records.len(),
        "both datapaths must fill the whole matrix"
    );

    // Raw chunk bytes differ only in wall times; canonical trees are
    // byte-identical, manifest included.
    assert_eq!(canonical_tree(&sharded_dir), canonical_tree(&in_proc_dir));

    // The stronger in-memory statement: record streams are equal once
    // per-run wall time is ignored (everything else, engine counters
    // included, crossed the pipe exactly).
    for (a, b) in in_proc.result.records.iter().zip(&sharded.result.records) {
        let mut b = b.clone();
        b.wall_ms = a.wall_ms;
        assert_eq!(
            *a, b,
            "{}-s{} diverged across the pipe",
            a.experiment, a.seed
        );
    }

    std::fs::remove_dir_all(&in_proc_dir).ok();
    std::fs::remove_dir_all(&sharded_dir).ok();
}
