//! Codebook-cache counters in campaign artifacts.
//!
//! Device construction funnels every codebook request through the
//! per-context memoization cache in `mmwave_phy::codebook`; the hit/miss
//! counts land in the task's `SimCtx` and flow into each run's
//! `engine.codebook_*` artifact fields. Two properties matter:
//!
//! 1. a real experiment actually exercises the cache (cold requests are
//!    resolved from the campaign-wide prebuilt pool, repeat
//!    constructions hit the per-context cache), and
//! 2. the counters are a **pure function of the task** — each task runs
//!    in a fresh context whose cache is born empty, so a warm worker
//!    thread reports the same numbers as a cold one.

use mmwave_campaign::{runner, CampaignConfig};
use mmwave_core::experiments;

fn table1_config() -> CampaignConfig {
    CampaignConfig {
        experiments: vec![experiments::find("table1").expect("registered")],
        seeds: vec![1],
        quick: true,
        jobs: 1,
        cc: None,
        prune: None,
    }
}

#[test]
fn campaign_runs_report_codebook_cache_activity() {
    let result = runner::run(&table1_config());
    let rec = &result.records[0];
    assert!(
        rec.engine.codebook_prebuilt_hits > 0,
        "canonical device construction must resolve from the prebuilt pool"
    );
    assert_eq!(
        rec.engine.codebook_misses, 0,
        "a canonical-device experiment must never pay cold synthesis itself"
    );
    assert!(
        rec.engine.codebook_hits > 0,
        "repeat constructions of the same device must hit the cache"
    );
}

#[test]
fn codebook_counters_are_pure_per_task() {
    // Back-to-back campaigns reuse worker threads; since every task gets
    // a fresh context (and with it an empty codebook cache), both must
    // report identical counters (this is what keeps artifact bytes
    // jobs-independent).
    let first = runner::run(&table1_config());
    let second = runner::run(&table1_config());
    assert_eq!(
        first.records[0].engine.codebook_hits,
        second.records[0].engine.codebook_hits
    );
    assert_eq!(
        first.records[0].engine.codebook_misses,
        second.records[0].engine.codebook_misses
    );
    assert_eq!(
        first.records[0].engine.codebook_prebuilt_hits,
        second.records[0].engine.codebook_prebuilt_hits
    );
}

#[test]
fn campaign_pays_cold_synthesis_once_across_tasks() {
    // Eight tasks (4 experiments × 2 seeds), all built from the canonical
    // calibration devices: the campaign's single prebuild covers every
    // task, so no task ever reports a cold synthesis of its own — the
    // N-task campaign pays the sector synthesis exactly once, up front.
    let cfg = CampaignConfig {
        experiments: ["table1", "fig03", "fig08", "fig09"]
            .iter()
            .map(|id| experiments::find(id).expect("registered"))
            .collect(),
        seeds: vec![1, 2],
        quick: true,
        jobs: 2,
        cc: None,
        prune: None,
    };
    let result = runner::run(&cfg);
    assert!(result.records.len() >= 8);
    for rec in &result.records {
        assert_eq!(
            rec.engine.codebook_misses, 0,
            "{}-s{} synthesized privately despite the campaign prebuild",
            rec.experiment, rec.seed
        );
        assert!(
            rec.engine.codebook_prebuilt_hits > 0,
            "{}-s{} never consulted the prebuilt pool",
            rec.experiment,
            rec.seed
        );
    }
}
