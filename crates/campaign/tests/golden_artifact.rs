//! Golden-artifact regression test: a committed, wall-time-normalized
//! campaign artifact set, diffed byte-for-byte on every `cargo test`.
//!
//! The campaign layer's determinism contract says the artifact bytes are
//! a pure function of (experiment matrix, seeds, quick flag) — worker
//! count, scheduling order and cache mode must all be invisible. This
//! test freezes one small matrix and fails on ANY byte drift, making
//! accidental behavior changes (a perturbed RNG stream, a changed
//! counter, a renamed field) visible in review instead of silently
//! shifting every downstream number.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! cargo test -p mmwave-campaign --test golden_artifact -- --ignored
//! ```
//!
//! and commit the rewritten `tests/golden/campaign_quick.txt` alongside
//! the change that moved it.

use mmwave_campaign::{artifact, runner, CampaignConfig};
use mmwave_core::experiments;
use std::path::PathBuf;

const GOLDEN_REL: &str = "tests/golden/campaign_quick.txt";

/// The frozen matrix: cheap experiments spanning a static protocol trace
/// (table1, fig03), the WiHD system (fig15), a dynamic fault scenario
/// (dynblock, which exercises the scenario/fault engine counters) and the
/// dense multi-room floor (enterprise, which exercises the spatial
/// interference graph and its prune counters).
fn subset() -> Vec<&'static experiments::Experiment> {
    ["table1", "fig03", "fig15", "dynblock", "enterprise"]
        .iter()
        .map(|id| experiments::find(id).expect("registered"))
        .collect()
}

/// Render the full normalized artifact set as one diffable document.
fn render_artifacts() -> String {
    // Golden bytes are defined with the cache ENABLED — `runner::run`
    // stamps `CacheMode::Cached` into every task's context, so no
    // process-wide state needs pinning.
    let cfg = CampaignConfig {
        experiments: subset(),
        seeds: vec![1, 2],
        quick: true,
        jobs: 2,
        cc: None,
        prune: None,
    };
    artifact::canonical_document(&runner::run(&cfg))
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_REL)
}

#[test]
fn campaign_artifacts_match_committed_golden() {
    let expected = std::fs::read_to_string(golden_path())
        .expect("golden file missing — run the ignored regenerate test once");
    let actual = render_artifacts();
    if actual != expected {
        let mismatch = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a)
            .map(|(i, (e, a))| {
                format!(
                    "first differing line {}:\n  golden: {e}\n  actual: {a}",
                    i + 1
                )
            })
            .unwrap_or_else(|| "documents differ in length".into());
        panic!(
            "campaign artifacts drifted from {GOLDEN_REL}\n{mismatch}\n\n\
             If this change is intentional, regenerate with\n  \
             cargo test -p mmwave-campaign --test golden_artifact -- --ignored\n\
             and commit the new golden file. If you did NOT intend to move\n\
             these numbers, the usual culprits are a perturbed RNG stream\n\
             (an extra draw shifts every later sample) or a change to the\n\
             calibrated array seeds in `mmwave_phy::calib` — those are\n\
             re-pinned by `crates/phy/tests/seed_sweep.rs`, so start there."
        );
    }
}

/// Rewrites the golden file. Run explicitly (`-- --ignored`) after an
/// intentional behavior change; never runs in a normal test pass.
#[test]
#[ignore = "regenerates the golden artifact file in place"]
fn regenerate_golden() {
    let path = golden_path();
    std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    std::fs::write(&path, render_artifacts()).expect("write golden");
    println!("rewrote {}", path.display());
}
