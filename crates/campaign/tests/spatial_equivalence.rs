//! The spatial interference graph's core promise: pruning is invisible
//! in every emitted byte. The same campaign run in enforce mode (pruned
//! pairs short-circuit to the coupling floor without touching the ray
//! tracer) and audit mode (every pruned pair is additionally re-evaluated
//! through the full radiometric chain and asserted below the floor) must
//! produce byte-identical artifacts — including the
//! `engine.spatial_pruned_pairs` counter, which fires identically in both
//! modes by construction. An unsound prune (a pair the bound admits but
//! physics couples above the floor) panics the audit run and shows up
//! here as a `panicked` record diffing against a `pass`.
//!
//! The prune mode is per-task state: [`runner::run_with_prune_mode`]
//! stamps it into every task's [`SimCtx`] via
//! [`mmwave_channel::spatial::install_override`], so the two campaigns
//! coexist with any other test without shared flags.
//!
//! [`SimCtx`]: mmwave_sim::ctx::SimCtx

use mmwave_campaign::{artifact, runner, CampaignConfig};
use mmwave_channel::PruneMode;
use mmwave_core::experiments;

/// The matrix: `enterprise` is the experiment the interference graph
/// exists for (18 closed offices, 228 stations, millions of pruned pair
/// evaluations); the cheap static traces ride along to prove the override
/// is inert for experiments that never enable spatial pruning.
fn subset() -> Vec<&'static experiments::Experiment> {
    ["table1", "fig03", "enterprise"]
        .iter()
        .map(|id| experiments::find(id).expect("registered"))
        .collect()
}

fn normalized_artifacts(mode: PruneMode) -> Vec<(String, String)> {
    let cfg = CampaignConfig {
        experiments: subset(),
        seeds: vec![1, 2],
        quick: true,
        jobs: 2,
        cc: None,
        prune: None,
    };
    let result = runner::run_with_prune_mode(&cfg, mode);
    assert!(
        result.all_passed(),
        "{} campaign must pass before bytes are compared",
        mode.as_str()
    );
    artifact::canonical_artifacts(&result)
}

#[test]
fn artifacts_identical_in_enforce_and_audit_mode() {
    let enforced = normalized_artifacts(PruneMode::Enforce);
    let audited = normalized_artifacts(PruneMode::Audit);
    assert_eq!(enforced.len(), audited.len());
    for ((name_a, body_a), (name_b, body_b)) in enforced.iter().zip(&audited) {
        assert_eq!(name_a, name_b, "artifact order must match");
        assert_eq!(
            body_a, body_b,
            "artifact {name_a} differs between enforce and audit runs"
        );
    }
}
