//! The campaign subsystem's core promise: artifacts are bitwise identical
//! regardless of worker count. Scheduling, work stealing and LPT dispatch
//! may reorder *execution*, but never any emitted byte (once execution
//! metadata — wall times and the jobs count — is normalized out).

use mmwave_campaign::{artifact, runner, CampaignConfig};
use mmwave_core::experiments;

/// Cheap experiments only: this is about scheduling, not physics.
/// fig09/fig11 share a per-context TCP-sweep cache; with one fresh
/// context per task each run recomputes its sweep from scratch, so their
/// presence asserts those counters stay byte-identical regardless of
/// which worker runs them.
fn quick_subset() -> Vec<&'static experiments::Experiment> {
    ["table1", "fig03", "fig08", "fig15", "fig09", "fig11"]
        .iter()
        .map(|id| experiments::find(id).expect("registered"))
        .collect()
}

fn normalized_artifacts(jobs: usize) -> Vec<(String, String)> {
    let cfg = CampaignConfig {
        experiments: quick_subset(),
        seeds: vec![1, 2],
        quick: true,
        jobs,
        cc: None,
        prune: None,
    };
    artifact::canonical_artifacts(&runner::run(&cfg))
}

#[test]
fn artifacts_identical_for_jobs_1_and_4() {
    let serial = normalized_artifacts(1);
    let sharded = normalized_artifacts(4);
    assert_eq!(serial.len(), sharded.len());
    for ((name_a, body_a), (name_b, body_b)) in serial.iter().zip(&sharded) {
        assert_eq!(name_a, name_b, "artifact order must match");
        assert_eq!(
            body_a, body_b,
            "artifact {name_a} differs between jobs=1 and jobs=4"
        );
    }
}
