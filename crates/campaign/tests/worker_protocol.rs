//! Protocol smoke against the REAL `campaign worker` subprocess: frame a
//! task over its stdin, read the framed record off its stdout, and check
//! exit behavior for the clean-shutdown and garbage-input paths. This is
//! the narrow waist the control plane depends on; everything here speaks
//! the same `proto` codec production uses.

use mmwave_campaign::proto::{self, Msg, WireTask};
use mmwave_campaign::RunStatus;
use mmwave_sim::ctx::CacheMode;
use std::io::{BufReader, Write};
use std::process::{Child, Command, Stdio};

fn spawn_worker() -> Child {
    Command::new(env!("CARGO_BIN_EXE_campaign"))
        .arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn campaign worker")
}

fn task(seed: u64) -> WireTask {
    WireTask {
        experiment: "table1".into(),
        exp_index: 0,
        seed,
        quick: true,
        cache_mode: CacheMode::Cached,
        cc: None,
        prune: None,
    }
}

#[test]
fn worker_executes_framed_tasks_and_exits_cleanly_on_done() {
    let mut child = spawn_worker();
    let mut stdin = child.stdin.take().expect("stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));

    // Two tasks, interleaved write/read (the control plane's actual
    // access pattern: one in-flight task per worker).
    for seed in [1u64, 2] {
        proto::write_msg(&mut stdin, &Msg::Task(task(seed))).expect("send task");
        let Some(Msg::Result(record)) = proto::read_msg(&mut stdout).expect("read result") else {
            panic!("expected RESULT for seed {seed}");
        };
        assert_eq!(record.experiment, "table1");
        assert_eq!(record.seed, seed);
        assert_eq!(record.status, RunStatus::Pass);
        assert!(
            record.engine.events_popped > 0,
            "the worker actually simulated"
        );
        assert!(
            record.engine.codebook_prebuilt_hits > 0,
            "the worker paid the codebook prebuild, like the in-process pool"
        );
    }

    proto::write_msg(&mut stdin, &Msg::Done).expect("send done");
    drop(stdin);
    assert_eq!(proto::read_msg(&mut stdout).expect("eof"), None);
    let status = child.wait().expect("wait");
    assert!(status.success(), "DONE must exit 0, got {status:?}");
}

#[test]
fn worker_exits_cleanly_on_bare_eof() {
    let mut child = spawn_worker();
    drop(child.stdin.take());
    let status = child.wait().expect("wait");
    assert!(
        status.success(),
        "bare EOF is a clean shutdown, got {status:?}"
    );
}

#[test]
fn worker_rejects_garbage_with_nonzero_exit() {
    let mut child = spawn_worker();
    let mut stdin = child.stdin.take().expect("stdin");
    stdin
        .write_all(b"definitely not a frame header\n")
        .expect("write garbage");
    drop(stdin);
    let status = child.wait().expect("wait");
    assert!(
        !status.success(),
        "a torn/garbage frame must exit nonzero, got {status:?}"
    );
}

#[test]
fn worker_reports_wire_records_identical_to_in_process_execution() {
    // The same task through the pipe and through the in-process runner
    // must yield the same record minus wall time — the wire codec adds
    // and loses nothing.
    let mut child = spawn_worker();
    let mut stdin = child.stdin.take().expect("stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
    proto::write_msg(&mut stdin, &Msg::Task(task(1))).expect("send task");
    let Some(Msg::Result(piped)) = proto::read_msg(&mut stdout).expect("read result") else {
        panic!("expected RESULT");
    };
    proto::write_msg(&mut stdin, &Msg::Done).expect("send done");
    let _ = child.wait();

    // Same prebuild the worker pays at startup, so codebook counters are
    // comparable.
    let spec = task(1).resolve().expect("resolvable");
    let local = mmwave_campaign::runner::run_task_prebuilt(
        &spec,
        &mmwave_phy::CodebookPrebuild::standard_devices(),
    );
    let mut piped = *piped;
    piped.wall_ms = local.wall_ms;
    assert_eq!(piped, local);
}
