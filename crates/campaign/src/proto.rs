//! The control-plane ↔ worker wire protocol.
//!
//! Workers are `campaign worker` subprocesses driven over stdio pipes, so
//! the protocol is a std-only, length-prefixed line framing:
//!
//! ```text
//! <TAG> <LEN>\n        header line: message type + payload byte count
//! <LEN bytes>\n        JSON payload, then one terminating newline
//! ```
//!
//! Tags: `TASK` (control → worker: one task to execute), `RESULT`
//! (worker → control: the completed [`RunRecord`], encoded with the run
//! artifact codec so engine counters marshal through
//! [`EngineCounters::FIELDS`] and the payload **is** the artifact chunk
//! body), and `DONE` (control → worker: drain and exit; a clean EOF on
//! stdin means the same).
//!
//! The explicit length makes framing independent of payload content
//! (rendered JSON contains newlines), and the trailing newline after the
//! payload is a cheap tear detector: if it is missing, the peer died
//! mid-write and the stream is declared broken rather than resynced.
//!
//! Determinism: a `TASK` payload carries exactly the fields of
//! [`TaskSpec`] that define artifact bytes (experiment id, matrix index,
//! seed, quick, cache/cc/prune modes) — nothing about scheduling — so a
//! task executes identically in-process and in any worker process.
//!
//! [`EngineCounters::FIELDS`]: mmwave_sim::metrics::EngineCounters::FIELDS

use std::io::{self, BufRead, Write};

use crate::json::Json;
use crate::{artifact, RunRecord, TaskSpec};
use mmwave_sim::ctx::CacheMode;

/// A framed protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Control → worker: execute this task.
    Task(WireTask),
    /// Worker → control: the finished record (payload = chunk bytes).
    Result(Box<RunRecord>),
    /// Control → worker: no more tasks; exit cleanly.
    Done,
}

/// The process-portable form of a [`TaskSpec`]: the experiment travels by
/// registry id and is re-resolved in the worker, everything else is the
/// plain matrix cell.
#[derive(Clone, Debug, PartialEq)]
pub struct WireTask {
    pub experiment: String,
    pub exp_index: usize,
    pub seed: u64,
    pub quick: bool,
    pub cache_mode: CacheMode,
    pub cc: Option<mmwave_transport::CcKind>,
    pub prune: Option<mmwave_channel::PruneMode>,
}

impl WireTask {
    /// Capture a [`TaskSpec`] for the wire.
    pub fn from_spec(t: &TaskSpec) -> WireTask {
        WireTask {
            experiment: t.exp.id.to_string(),
            exp_index: t.exp_index,
            seed: t.seed,
            quick: t.quick,
            cache_mode: t.cache_mode,
            cc: t.cc,
            prune: t.prune,
        }
    }

    /// Re-resolve into an executable [`TaskSpec`] against this process's
    /// experiment registry. Errors if the control plane named an
    /// experiment this worker binary does not know (version skew).
    pub fn resolve(&self) -> Result<TaskSpec, String> {
        let exp = mmwave_core::experiments::find(&self.experiment)
            .ok_or_else(|| format!("unknown experiment id '{}'", self.experiment))?;
        Ok(TaskSpec {
            exp,
            exp_index: self.exp_index,
            seed: self.seed,
            quick: self.quick,
            cache_mode: self.cache_mode,
            cc: self.cc,
            prune: self.prune,
        })
    }

    fn to_json(&self) -> Json {
        let opt = |s: Option<&'static str>| s.map_or(Json::Null, |v| Json::Str(v.into()));
        Json::Obj(vec![
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("exp_index".into(), Json::Int(self.exp_index as u64)),
            ("seed".into(), Json::Int(self.seed)),
            ("quick".into(), Json::Bool(self.quick)),
            (
                "cache_mode".into(),
                Json::Str(self.cache_mode.as_str().into()),
            ),
            ("cc".into(), opt(self.cc.map(|c| c.as_str()))),
            ("prune".into(), opt(self.prune.map(|p| p.as_str()))),
        ])
    }

    fn from_json(v: &Json) -> Result<WireTask, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field '{k}'"));
        let opt_str = |k: &str| -> Result<Option<&str>, String> {
            match field(k)? {
                Json::Null => Ok(None),
                Json::Str(s) => Ok(Some(s)),
                _ => Err(format!("{k} must be null or a string")),
            }
        };
        Ok(WireTask {
            experiment: field("experiment")?
                .as_str()
                .ok_or("experiment must be a string")?
                .into(),
            exp_index: field("exp_index")?
                .as_u64()
                .ok_or("exp_index must be an integer")? as usize,
            seed: field("seed")?.as_u64().ok_or("seed must be an integer")?,
            quick: field("quick")?.as_bool().ok_or("quick must be a bool")?,
            cache_mode: field("cache_mode")?
                .as_str()
                .and_then(CacheMode::from_str)
                .ok_or("cache_mode must be cached|bypass")?,
            cc: opt_str("cc")?
                .map(|s| {
                    mmwave_transport::CcKind::from_str(s).ok_or_else(|| format!("unknown cc '{s}'"))
                })
                .transpose()?,
            prune: opt_str("prune")?
                .map(|s| {
                    mmwave_channel::PruneMode::from_str(s)
                        .ok_or_else(|| format!("unknown prune mode '{s}'"))
                })
                .transpose()?,
        })
    }
}

fn tag(msg: &Msg) -> &'static str {
    match msg {
        Msg::Task(_) => "TASK",
        Msg::Result(_) => "RESULT",
        Msg::Done => "DONE",
    }
}

fn payload(msg: &Msg) -> String {
    match msg {
        Msg::Task(t) => t.to_json().render(),
        // RESULT payloads are rendered by the artifact codec, so the bytes
        // a worker ships are byte-for-byte the chunk the control plane
        // appends to disk.
        Msg::Result(r) => artifact::run_to_json(r).render(),
        Msg::Done => String::new(),
    }
}

fn bad_data(context: &str, detail: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{context}: {detail}"))
}

/// Frame and write one message, flushing so the peer unblocks.
pub fn write_msg(w: &mut impl Write, msg: &Msg) -> io::Result<()> {
    let body = payload(msg);
    w.write_all(format!("{} {}\n", tag(msg), body.len()).as_bytes())?;
    w.write_all(body.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Read one framed message. `Ok(None)` is a clean EOF at a frame
/// boundary; EOF anywhere inside a frame is an error (the peer died
/// mid-message).
pub fn read_msg(r: &mut impl BufRead) -> io::Result<Option<Msg>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    if !header.ends_with('\n') {
        return Err(bad_data("protocol header", "torn header line (peer died)"));
    }
    let mut parts = header.split_whitespace();
    let (Some(tag), Some(len), None) = (parts.next(), parts.next(), parts.next()) else {
        return Err(bad_data(
            "protocol header",
            format!("malformed: {header:?}"),
        ));
    };
    let len: usize = len
        .parse()
        .map_err(|_| bad_data("protocol header", format!("bad length: {header:?}")))?;
    let mut body = vec![0u8; len + 1];
    r.read_exact(&mut body)
        .map_err(|e| bad_data("protocol payload", format!("short read: {e}")))?;
    if body.pop() != Some(b'\n') {
        return Err(bad_data("protocol payload", "missing frame terminator"));
    }
    let body = String::from_utf8(body).map_err(|e| bad_data("protocol payload", e))?;
    let parsed = |context: &str| Json::parse(&body).map_err(|e| bad_data(context, e));
    match tag {
        "TASK" => Ok(Some(Msg::Task(
            WireTask::from_json(&parsed("TASK payload")?).map_err(|e| bad_data("TASK", e))?,
        ))),
        "RESULT" => Ok(Some(Msg::Result(Box::new(
            artifact::run_from_json(&parsed("RESULT payload")?)
                .map_err(|e| bad_data("RESULT", e))?,
        )))),
        "DONE" => Ok(Some(Msg::Done)),
        other => Err(bad_data(
            "protocol header",
            format!("unknown tag '{other}'"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_sim::metrics::EngineCounters;
    use std::io::BufReader;

    fn wire_task() -> WireTask {
        WireTask {
            experiment: "table1".into(),
            exp_index: 3,
            seed: 17,
            quick: true,
            cache_mode: CacheMode::Bypass,
            cc: Some(mmwave_transport::CcKind::Cubic),
            prune: Some(mmwave_channel::PruneMode::Audit),
        }
    }

    fn record() -> RunRecord {
        let mut engine = EngineCounters::default();
        for (i, f) in EngineCounters::FIELDS.iter().enumerate() {
            engine.set(f, 100 + i as u64);
        }
        RunRecord {
            experiment: "table1".into(),
            title: "Table 1".into(),
            seed: 17,
            quick: true,
            scenario: "point-to-point".into(),
            status: crate::RunStatus::Pass,
            violations: vec![],
            output: "row 1\nrow 2 with \"quotes\"\n".into(),
            panic_message: None,
            wall_ms: 12.375,
            engine,
        }
    }

    #[test]
    fn messages_roundtrip_through_one_stream() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &Msg::Task(wire_task())).expect("write task");
        write_msg(&mut buf, &Msg::Result(Box::new(record()))).expect("write result");
        write_msg(&mut buf, &Msg::Done).expect("write done");

        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_msg(&mut r).expect("task"),
            Some(Msg::Task(wire_task()))
        );
        let Some(Msg::Result(back)) = read_msg(&mut r).expect("result") else {
            panic!("expected RESULT");
        };
        let orig = record();
        assert_eq!(back.engine, orig.engine, "counters must marshal exactly");
        assert_eq!(back.output, orig.output);
        assert_eq!(back.wall_ms, orig.wall_ms);
        assert_eq!(read_msg(&mut r).expect("done"), Some(Msg::Done));
        assert_eq!(read_msg(&mut r).expect("eof"), None, "clean EOF");
    }

    #[test]
    fn none_fields_roundtrip() {
        let mut t = wire_task();
        t.cc = None;
        t.prune = None;
        let mut buf = Vec::new();
        write_msg(&mut buf, &Msg::Task(t.clone())).expect("write");
        let back = read_msg(&mut BufReader::new(&buf[..])).expect("read");
        assert_eq!(back, Some(Msg::Task(t)));
    }

    #[test]
    fn result_payload_is_the_chunk_body() {
        // The bytes on the wire ARE the artifact chunk: framing strips to
        // exactly what run_to_json renders.
        let rec = record();
        let chunk = artifact::run_to_json(&rec).render();
        let mut buf = Vec::new();
        write_msg(&mut buf, &Msg::Result(Box::new(rec))).expect("write");
        let framed = String::from_utf8(buf).expect("utf8");
        let (header, rest) = framed.split_once('\n').expect("header line");
        assert_eq!(header, format!("RESULT {}", chunk.len()));
        assert_eq!(rest, format!("{chunk}\n"));
    }

    #[test]
    fn torn_frames_error_instead_of_resyncing() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &Msg::Task(wire_task())).expect("write");
        // Kill the stream mid-payload.
        buf.truncate(buf.len() - 10);
        assert!(read_msg(&mut BufReader::new(&buf[..])).is_err());
        // Corrupt the frame terminator.
        let mut buf2 = Vec::new();
        write_msg(&mut buf2, &Msg::Task(wire_task())).expect("write");
        let n = buf2.len();
        buf2[n - 1] = b'X';
        assert!(read_msg(&mut BufReader::new(&buf2[..])).is_err());
        // Unknown tag.
        assert!(read_msg(&mut BufReader::new(&b"BOGUS 0\n\n"[..])).is_err());
    }

    #[test]
    fn wire_task_resolves_against_the_registry() {
        let t = WireTask {
            experiment: "table1".into(),
            exp_index: 0,
            seed: 1,
            quick: true,
            cache_mode: CacheMode::Cached,
            cc: None,
            prune: None,
        };
        let spec = t.resolve().expect("resolves");
        assert_eq!(spec.exp.id, "table1");
        let mut bogus = t;
        bogus.experiment = "not-an-experiment".into();
        assert!(bogus.resolve().is_err());
    }
}
