//! The resumable run manifest: the control plane's crash-recovery ledger.
//!
//! Alongside the streamed artifact chunks (`runs/<id>-s<seed>.json`), the
//! control plane appends one line per completed task to
//! `<out>/campaign.manifest`:
//!
//! ```text
//! mmwave-campaign-manifest/1 fp <hex16>
//! chunk <hex16> <len> <experiment> <seed> <relpath>
//! ```
//!
//! * The header's `fp` is the [`fingerprint`] of the planned task matrix
//!   (experiment ids, seeds, quick flag, per-task cache/cc/prune). A
//!   `--resume` against a manifest whose fingerprint differs starts
//!   fresh — the old chunks describe a different campaign.
//! * Each `chunk` line records the FNV-1a 64 hash and byte length of one
//!   fully-written chunk file. The control plane appends the line *after*
//!   the chunk hit the disk (write-then-record), so a crash between the
//!   two leaves at worst an unrecorded chunk that the rerun overwrites.
//!
//! Loading is deliberately lenient: a line that does not parse — the
//! classic case being the final line of a run killed mid-append — is
//! dropped, which simply re-executes that one task on resume. A task is
//! considered *resumable* only if its manifest line parses **and** the
//! chunk file on disk hashes to the recorded value at the recorded
//! length; anything else (missing chunk, corrupted bytes, truncated
//! manifest entry) falls back to re-execution. Correctness therefore
//! never depends on the manifest: it can only skip work whose output is
//! provably already present.

use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::TaskSpec;

/// Manifest header schema tag.
pub const MANIFEST_FILE_SCHEMA: &str = "mmwave-campaign-manifest/1";

/// File name under the campaign output directory.
pub const MANIFEST_FILE_NAME: &str = "campaign.manifest";

/// FNV-1a 64-bit over `bytes` — the chunk-integrity hash. Std-only, a
/// few cycles per byte, and deterministic across platforms; collision
/// resistance against *accidental* corruption (truncation, bit flips,
/// partial writes) is all resume needs, since a hash-clean chunk is
/// merely *skipped*, never trusted over re-execution for anything else.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a planned task matrix: everything that determines the
/// artifact bytes of every task, in matrix order. Wall-clock knobs (jobs,
/// workers) are deliberately excluded — a resume may use a different
/// worker count.
pub fn fingerprint(tasks: &[TaskSpec]) -> u64 {
    let mut desc = String::new();
    for t in tasks {
        desc.push_str(t.exp.id);
        desc.push(' ');
        desc.push_str(&t.seed.to_string());
        desc.push(' ');
        desc.push_str(if t.quick { "quick" } else { "full" });
        desc.push(' ');
        desc.push_str(t.cache_mode.as_str());
        desc.push(' ');
        desc.push_str(t.cc.map_or("default", |c| c.as_str()));
        desc.push(' ');
        desc.push_str(t.prune.map_or("default", |p| p.as_str()));
        desc.push('\n');
    }
    fnv1a64(desc.as_bytes())
}

/// One recorded chunk: the proof that a task's artifact is on disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkEntry {
    /// FNV-1a 64 of the chunk file's bytes.
    pub hash: u64,
    /// Chunk file length in bytes (cheap pre-check before hashing).
    pub len: u64,
    /// Experiment id.
    pub experiment: String,
    /// Campaign seed.
    pub seed: u64,
    /// Chunk path relative to the output directory.
    pub rel_path: String,
}

impl ChunkEntry {
    /// The ledger line for this entry, newline-terminated — the exact
    /// bytes [`ManifestWriter::append`] writes.
    pub fn render(&self) -> String {
        format!(
            "chunk {:016x} {} {} {} {}\n",
            self.hash, self.len, self.experiment, self.seed, self.rel_path
        )
    }

    /// Parse one *complete* manifest line (caller guarantees the trailing
    /// newline was present). Returns `None` for anything malformed.
    pub fn parse(line: &str) -> Option<ChunkEntry> {
        let mut f = line.split_whitespace();
        if f.next()? != "chunk" {
            return None;
        }
        let hash = u64::from_str_radix(f.next()?, 16).ok()?;
        let len = f.next()?.parse().ok()?;
        let experiment = f.next()?.to_string();
        let seed = f.next()?.parse().ok()?;
        let rel_path = f.next()?.to_string();
        if f.next().is_some() {
            return None; // trailing junk: treat as corrupt
        }
        Some(ChunkEntry {
            hash,
            len,
            experiment,
            seed,
            rel_path,
        })
    }

    /// True if the chunk file under `out` exists and matches this entry's
    /// recorded length and hash.
    pub fn verify(&self, out: &Path) -> bool {
        let Ok(bytes) = std::fs::read(out.join(&self.rel_path)) else {
            return false;
        };
        bytes.len() as u64 == self.len && fnv1a64(&bytes) == self.hash
    }
}

/// A loaded manifest: the header fingerprint plus every line that parsed.
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Task-matrix fingerprint from the header.
    pub fingerprint: u64,
    /// Entries in file order (a task completed twice keeps the last).
    pub entries: Vec<ChunkEntry>,
}

impl Manifest {
    /// Load `<out>/campaign.manifest`, tolerating truncation: only lines
    /// terminated by `\n` that parse completely are kept. Returns `None`
    /// when the file is missing or its header is unusable — both mean
    /// "nothing to resume from".
    pub fn load(out: &Path) -> Option<Manifest> {
        let text = std::fs::read_to_string(out.join(MANIFEST_FILE_NAME)).ok()?;
        let mut lines = text.split_inclusive('\n');
        let header = lines.next()?;
        if !header.ends_with('\n') {
            return None; // killed while writing the header itself
        }
        let mut h = header.split_whitespace();
        if h.next()? != MANIFEST_FILE_SCHEMA || h.next()? != "fp" {
            return None;
        }
        let fingerprint = u64::from_str_radix(h.next()?, 16).ok()?;
        let mut entries = Vec::new();
        for line in lines {
            // A line without a newline is the torn tail of a killed
            // append; a line that fails to parse is corruption. Either
            // way: drop it, the task re-executes.
            if !line.ends_with('\n') {
                continue;
            }
            if let Some(e) = ChunkEntry::parse(line) {
                entries.push(e);
            }
        }
        Some(Manifest {
            fingerprint,
            entries,
        })
    }

    /// The last entry recorded for `(experiment, seed)`, if any.
    pub fn entry(&self, experiment: &str, seed: u64) -> Option<&ChunkEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.experiment == experiment && e.seed == seed)
    }
}

/// Append-as-you-go manifest writer. Creation truncates and writes the
/// header (plus any carried-over entries on resume), so the file on disk
/// is always `header + zero or more complete entries + at most one torn
/// tail` — exactly what [`Manifest::load`] tolerates.
pub struct ManifestWriter {
    file: BufWriter<std::fs::File>,
    path: PathBuf,
}

impl ManifestWriter {
    /// Create (truncate) the manifest with a fresh header. `carried` are
    /// the verified entries a resume is keeping; rewriting them drops
    /// stale lines (corrupt chunks, torn tails, superseded duplicates)
    /// instead of appending after garbage.
    pub fn create(out: &Path, fingerprint: u64, carried: &[ChunkEntry]) -> io::Result<Self> {
        let path = out.join(MANIFEST_FILE_NAME);
        let mut file = BufWriter::new(std::fs::File::create(&path)?);
        write!(file, "{MANIFEST_FILE_SCHEMA} fp {fingerprint:016x}\n")?;
        for e in carried {
            file.write_all(e.render().as_bytes())?;
        }
        file.flush()?;
        Ok(ManifestWriter { file, path })
    }

    /// Append one completed chunk and flush, so the entry survives the
    /// process dying right after. Call only after the chunk file is fully
    /// written (the write-then-record invariant).
    pub fn append(&mut self, entry: &ChunkEntry) -> io::Result<()> {
        self.file.write_all(entry.render().as_bytes())?;
        self.file.flush()
    }

    /// The manifest file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seed: u64) -> ChunkEntry {
        ChunkEntry {
            hash: 0xdead_beef_0123_4567,
            len: 42,
            experiment: "fig09".into(),
            seed,
            rel_path: format!("runs/fig09-s{seed}.json"),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "mmwave-manifest-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn entries_roundtrip_and_survive_torn_tail() {
        let dir = tmpdir("roundtrip");
        let mut w = ManifestWriter::create(&dir, 0xabc, &[]).expect("create");
        w.append(&entry(1)).expect("append");
        w.append(&entry(2)).expect("append");
        drop(w);

        // Simulate a kill mid-append: a torn final line.
        let path = dir.join(MANIFEST_FILE_NAME);
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("chunk 00ff 12 fig09 3 runs/fig0"); // no newline
        std::fs::write(&path, &text).expect("write torn");

        let m = Manifest::load(&dir).expect("loads");
        assert_eq!(m.fingerprint, 0xabc);
        assert_eq!(m.entries.len(), 2, "torn tail must be dropped");
        assert_eq!(m.entry("fig09", 2), Some(&entry(2)));
        assert_eq!(m.entry("fig09", 3), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_lines_are_dropped_not_fatal() {
        let dir = tmpdir("corrupt");
        let path = dir.join(MANIFEST_FILE_NAME);
        std::fs::write(
            &path,
            format!(
                "{MANIFEST_FILE_SCHEMA} fp 0000000000000abc\n\
                 chunk zzzz 1 fig09 1 runs/fig09-s1.json\n\
                 {}chunk 0123 not-a-len fig09 7 runs/x.json\n\
                 garbage line\n",
                entry(2).render()
            ),
        )
        .expect("write");
        let m = Manifest::load(&dir).expect("loads");
        assert_eq!(m.entries, vec![entry(2)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_or_headerless_manifest_is_none() {
        let dir = tmpdir("missing");
        assert!(Manifest::load(&dir).is_none());
        std::fs::write(dir.join(MANIFEST_FILE_NAME), "wrong-schema fp 00\n").expect("write");
        assert!(Manifest::load(&dir).is_none());
        std::fs::write(
            dir.join(MANIFEST_FILE_NAME),
            format!("{MANIFEST_FILE_SCHEMA} fp 0a"), // torn header
        )
        .expect("write");
        assert!(Manifest::load(&dir).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_checks_length_and_hash() {
        let dir = tmpdir("verify");
        std::fs::create_dir_all(dir.join("runs")).expect("mkdir");
        let body = b"{\n  \"k\": 1\n}\n";
        let e = ChunkEntry {
            hash: fnv1a64(body),
            len: body.len() as u64,
            experiment: "fig09".into(),
            seed: 1,
            rel_path: "runs/fig09-s1.json".into(),
        };
        assert!(!e.verify(&dir), "missing chunk must not verify");
        std::fs::write(dir.join(&e.rel_path), body).expect("write chunk");
        assert!(e.verify(&dir));
        std::fs::write(dir.join(&e.rel_path), b"{\n  \"k\": 2\n}\n").expect("corrupt");
        assert!(!e.verify(&dir), "corrupted chunk must not verify");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_tracks_matrix_identity() {
        use mmwave_core::experiments;
        use mmwave_sim::ctx::CacheMode;
        let task = |id: &str, seed| TaskSpec {
            exp: experiments::find(id).expect("registered"),
            exp_index: 0,
            seed,
            quick: true,
            cache_mode: CacheMode::Cached,
            cc: None,
            prune: None,
        };
        let a = fingerprint(&[task("table1", 1), task("fig03", 2)]);
        assert_eq!(
            a,
            fingerprint(&[task("table1", 1), task("fig03", 2)]),
            "deterministic"
        );
        assert_ne!(a, fingerprint(&[task("fig03", 2), task("table1", 1)]));
        assert_ne!(a, fingerprint(&[task("table1", 1), task("fig03", 3)]));
        let mut full = [task("table1", 1), task("fig03", 2)];
        full[0].quick = false;
        assert_ne!(a, fingerprint(&full));
        let mut bypass = [task("table1", 1), task("fig03", 2)];
        bypass[1].cache_mode = CacheMode::Bypass;
        assert_ne!(a, fingerprint(&bypass));
    }
}
