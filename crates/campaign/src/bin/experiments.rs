//! Command-line experiment runner (single-seed convenience front-end).
//!
//! ```text
//! experiments [--quick] [--seed N] [--jobs N] [--out DIR] [--list] [all | <id> ...]
//! ```
//!
//! Runs the requested experiments (default: all) and prints the
//! paper-style rows/series plus the shape-check verdicts. With `--out`,
//! each report is also written to `DIR/<id>.txt` (handy for diffing two
//! campaigns). Exit code 1 if any shape check failed or panicked.
//!
//! This is a thin wrapper over the `mmwave-campaign` subsystem: it builds
//! a one-seed [`CampaignConfig`] and pretty-prints the records. For
//! multi-seed matrices and structured JSON artifacts use the `campaign`
//! binary instead.

use mmwave_campaign::{runner, CampaignConfig, RunStatus};
use mmwave_core::experiments::{self, Experiment};

struct Cli {
    quick: bool,
    seed: u64,
    jobs: usize,
    out_dir: Option<String>,
    list: bool,
    ids: Vec<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        quick: false,
        seed: 1,
        jobs: 1,
        out_dir: None,
        list: false,
        ids: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--list" => cli.list = true,
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                cli.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                cli.jobs = v.parse().map_err(|_| format!("bad job count: {v}"))?;
            }
            "--out" => {
                cli.out_dir = Some(args.next().ok_or("--out needs a directory")?);
            }
            "all" => {}
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            id => cli.ids.push(id.to_string()),
        }
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}\nusage: experiments [--quick] [--seed N] [--jobs N] [--out DIR] [--list] [all | <id> ...]");
            std::process::exit(2);
        }
    };
    if cli.list {
        println!("available experiment ids (paper order):");
        for id in experiments::ids() {
            println!("  {id}");
        }
        return;
    }
    let mut failures = 0;
    let selected: Vec<&'static Experiment> = if cli.ids.is_empty() {
        experiments::REGISTRY.iter().collect()
    } else {
        cli.ids
            .iter()
            .filter_map(|id| {
                let found = experiments::find(id);
                if found.is_none() {
                    eprintln!("unknown experiment id: {id} (try --list)");
                    failures += 1;
                }
                found
            })
            .collect()
    };
    if let Some(dir) = &cli.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            std::process::exit(2);
        }
    }

    let cfg = CampaignConfig {
        experiments: selected,
        seeds: vec![cli.seed],
        quick: cli.quick,
        jobs: cli.jobs,
        cc: None,
        prune: None,
    };
    let result = runner::run(&cfg);

    for r in &result.records {
        println!("\n################################################################");
        println!("# {} — {}", r.experiment, r.title);
        println!("################################################################");
        println!("{}", r.output);
        match r.status {
            RunStatus::Pass => {
                println!("[PASS] all shape checks hold ({:.1} ms)", r.wall_ms);
            }
            RunStatus::ShapeFail => {
                failures += 1;
                println!("[FAIL] {} shape check(s) violated:", r.violations.len());
                for v in &r.violations {
                    println!("  - {v}");
                }
            }
            RunStatus::Panicked => {
                failures += 1;
                println!(
                    "[FAIL] panicked: {}",
                    r.panic_message.as_deref().unwrap_or("unknown panic")
                );
            }
        }
        if let Some(dir) = &cli.out_dir {
            let verdict = match r.status {
                RunStatus::Pass => "PASS".to_string(),
                RunStatus::ShapeFail => format!("FAIL\n{}", r.violations.join("\n")),
                RunStatus::Panicked => {
                    format!("PANIC\n{}", r.panic_message.as_deref().unwrap_or(""))
                }
            };
            let body = format!("{}\n\n{}\n{}\n", r.title, r.output, verdict);
            if let Err(e) = std::fs::write(format!("{dir}/{}.txt", r.experiment), body) {
                eprintln!("cannot write report for {}: {e}", r.experiment);
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
