//! Campaign CLI: run the experiment × seed matrix on a worker pool.
//!
//! ```text
//! campaign [--jobs N] [--workers N] [--resume] [--seeds A..B | --seeds N]
//!          [--quick] [--out DIR] [--cc ALG] [--prune MODE] [--json]
//!          [--list] [all | <id> ...]
//! campaign worker
//! ```
//!
//! * `--jobs N`    worker threads (default: one per core)
//! * `--workers N` shard across N `campaign worker` subprocesses instead
//!   of in-process threads (requires `--out`; artifact bytes are
//!   identical either way)
//! * `--resume`    skip tasks whose artifact chunk already exists and
//!   hashes clean against `<out>/campaign.manifest` (requires `--out`)
//! * `--seeds A..B` half-open seed range (`--seeds 1..5` = seeds 1,2,3,4);
//!   a single number runs just that seed (default: 1)
//! * `--quick`     quick mode (shorter campaigns, fewer sweep points)
//! * `--cc ALG`    congestion-control override for every TCP flow
//!   (`reno`, `cubic`, `rate_probe`; default: each flow's own choice)
//! * `--prune MODE` spatial prune-mode override (`enforce`, `audit`;
//!   default: each experiment's own choice — audit re-checks every pruned
//!   pair through the full radiometric chain and panics on leakage)
//! * `--out DIR`   write `manifest.json` + `runs/*.json` artifacts,
//!   streamed incrementally with a resumable `campaign.manifest` ledger
//! * `--json`      print the manifest JSON to stdout instead of the table
//! * `--list`      list registered experiments and exit
//!
//! `campaign worker` is the subprocess datapath the control plane spawns
//! for `--workers N`: it executes framed tasks from stdin onto stdout
//! (see `mmwave_campaign::proto`) and is not meant for interactive use.
//!
//! Exit status: 0 if every run passed, 1 if any run failed its shape
//! checks or panicked (the campaign always completes — a panicking
//! experiment becomes a failed run, it does not abort the matrix), 2 on
//! usage errors.

use mmwave_campaign::control::{self, ControlOpts};
use mmwave_campaign::{artifact, runner, worker, CampaignConfig};
use mmwave_core::experiments::{self, Experiment};

struct Cli {
    jobs: usize,
    workers: usize,
    resume: bool,
    seeds: Vec<u64>,
    quick: bool,
    cc: Option<mmwave_transport::CcKind>,
    prune: Option<mmwave_channel::PruneMode>,
    out_dir: Option<String>,
    json: bool,
    list: bool,
    ids: Vec<String>,
}

fn parse_seeds(spec: &str) -> Result<Vec<u64>, String> {
    if let Some((a, b)) = spec.split_once("..") {
        let a: u64 = a
            .parse()
            .map_err(|_| format!("bad seed range start: {a}"))?;
        let b: u64 = b.parse().map_err(|_| format!("bad seed range end: {b}"))?;
        if a >= b {
            return Err(format!("empty seed range: {spec}"));
        }
        Ok((a..b).collect())
    } else {
        let n: u64 = spec.parse().map_err(|_| format!("bad seed: {spec}"))?;
        Ok(vec![n])
    }
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        jobs: 0,
        workers: 0,
        resume: false,
        seeds: vec![1],
        quick: false,
        cc: None,
        prune: None,
        out_dir: None,
        json: false,
        list: false,
        ids: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--json" => cli.json = true,
            "--list" => cli.list = true,
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                cli.jobs = v.parse().map_err(|_| format!("bad job count: {v}"))?;
            }
            "--workers" => {
                let v = args.next().ok_or("--workers needs a value")?;
                cli.workers = v.parse().map_err(|_| format!("bad worker count: {v}"))?;
            }
            "--resume" => cli.resume = true,
            "--seeds" => {
                let v = args.next().ok_or("--seeds needs a value (N or A..B)")?;
                cli.seeds = parse_seeds(&v)?;
            }
            "--cc" => {
                let v = args
                    .next()
                    .ok_or("--cc needs an algorithm (reno|cubic|rate_probe)")?;
                cli.cc = Some(
                    mmwave_transport::CcKind::from_str(&v)
                        .ok_or_else(|| format!("unknown congestion algorithm: {v}"))?,
                );
            }
            "--prune" => {
                let v = args.next().ok_or("--prune needs a mode (enforce|audit)")?;
                cli.prune = Some(match v.as_str() {
                    "enforce" => mmwave_channel::PruneMode::Enforce,
                    "audit" => mmwave_channel::PruneMode::Audit,
                    _ => return Err(format!("unknown prune mode: {v}")),
                });
            }
            "--out" => {
                cli.out_dir = Some(args.next().ok_or("--out needs a directory")?);
            }
            "all" => {}
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            id => cli.ids.push(id.to_string()),
        }
    }
    Ok(cli)
}

fn select(ids: &[String]) -> Result<Vec<&'static Experiment>, String> {
    if ids.is_empty() {
        return Ok(experiments::REGISTRY.iter().collect());
    }
    ids.iter()
        .map(|id| {
            experiments::find(id).ok_or_else(|| format!("unknown experiment id: {id} (try --list)"))
        })
        .collect()
}

fn main() {
    // The worker datapath: not a campaign invocation at all, just the
    // stdio task loop the control plane drives.
    if std::env::args().nth(1).as_deref() == Some("worker") {
        std::process::exit(worker::worker_main());
    }
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "{e}\nusage: campaign [--jobs N] [--workers N] [--resume] [--seeds A..B] [--quick] [--cc ALG] [--out DIR] [--json] [--list] [all | <id> ...]"
            );
            std::process::exit(2);
        }
    };
    if cli.list {
        println!("registered experiments (paper order):");
        for e in experiments::REGISTRY {
            println!("  {:<8} [{:?}] ({}) {}", e.id, e.cost, e.scenario, e.title);
        }
        return;
    }
    let selected = match select(&cli.ids) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let cfg = CampaignConfig {
        experiments: selected,
        seeds: cli.seeds,
        quick: cli.quick,
        jobs: cli.jobs,
        cc: cli.cc,
        prune: cli.prune,
    };
    let result = if let Some(dir) = &cli.out_dir {
        // Artifact runs go through the streaming control plane: chunks +
        // the resumable ledger land incrementally, and the datapath can
        // be process-sharded.
        let opts = ControlOpts {
            workers: cli.workers,
            resume: cli.resume,
            worker_cmd: Vec::new(),
        };
        match control::run_streaming(&cfg, std::path::Path::new(dir), &opts) {
            Ok(summary) => {
                if cli.resume {
                    eprintln!(
                        "resumed {} hash-clean task(s), executed {}",
                        summary.resumed.len(),
                        summary.executed.len()
                    );
                }
                eprintln!("wrote {}", summary.manifest_path.display());
                summary.result
            }
            Err(e) => {
                eprintln!("campaign failed under {dir}: {e}");
                std::process::exit(2);
            }
        }
    } else {
        if cli.workers > 0 || cli.resume {
            eprintln!("--workers/--resume need --out (the manifest lives there)");
            std::process::exit(2);
        }
        runner::run(&cfg)
    };

    if cli.json {
        print!("{}", artifact::manifest_to_json(&result).render());
    } else {
        println!(
            "{:<8} {:>6} {:>10} {:>12} {:>10} {:>9}  status",
            "id", "seed", "wall ms", "events", "cancelled", "peak q"
        );
        for r in &result.records {
            println!(
                "{:<8} {:>6} {:>10.1} {:>12} {:>10} {:>9}  {}",
                r.experiment,
                r.seed,
                r.wall_ms,
                r.engine.events_popped,
                r.engine.events_cancelled,
                r.engine.peak_queue_depth,
                r.status.as_str(),
            );
            for v in &r.violations {
                println!("         - {v}");
            }
            if let Some(p) = &r.panic_message {
                println!("         ! panicked: {p}");
            }
        }
        let (passed, shape_failed, panicked) = result.counts();
        println!(
            "\n{} runs on {} worker(s) in {:.1} ms: {} passed, {} shape-failed, {} panicked",
            result.records.len(),
            result.jobs,
            result.wall_ms,
            passed,
            shape_failed,
            panicked
        );
    }

    if !result.all_passed() {
        std::process::exit(1);
    }
}
