//! Hand-rolled JSON encoder/decoder — std-only.
//!
//! The workspace builds in hermetic environments with no crates.io access,
//! so campaign artifacts are serialized with this ~300-line module instead
//! of serde. Two properties matter more than generality:
//!
//! * **Deterministic output** — objects keep insertion order (a `Vec` of
//!   pairs, not a map), floats render with Rust's shortest round-trip
//!   `Display`, and indentation is fixed. Encoding the same value twice,
//!   on any thread, yields identical bytes; the campaign's determinism
//!   test diffs artifacts byte-for-byte.
//! * **Round-tripping** — `Json::parse(v.render())` reconstructs `v`
//!   exactly (floats included, thanks to shortest-repr printing), which
//!   the workspace smoke test asserts end to end.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order for deterministic output.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integer (counters, seeds). Kept separate from `Num` so
    /// u64 seeds survive the round trip exactly.
    Int(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Render with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. The whole input must be one value (plus
    /// surrounding whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Floats print via Rust's shortest round-trip `Display`, with `.0`
/// appended to integral values so they re-parse as `Num`, not `Int`.
/// Non-finite values have no JSON representation; emit null.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Called with `pos` on the 'u'; consumes "uXXXX" (and a low surrogate
    /// pair if present). Returns the decoded char.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // consume 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !is_float && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: "malformed number".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn render_parse_roundtrip() {
        let v = obj(vec![
            ("name", Json::Str("fig09 \"quoted\"\nline".into())),
            ("seed", Json::Int(u64::MAX)),
            ("wall_ms", Json::Num(12.375)),
            ("integral", Json::Num(4.0)),
            ("passed", Json::Bool(true)),
            ("panic", Json::Null),
            (
                "runs",
                Json::Arr(vec![
                    Json::Int(1),
                    Json::Num(-2.5),
                    Json::Str("µs — dash".into()),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("round trip parses");
        assert_eq!(back, v);
    }

    #[test]
    fn rendering_is_deterministic() {
        let v = obj(vec![("b", Json::Int(2)), ("a", Json::Int(1))]);
        assert_eq!(v.render(), v.render());
        // Insertion order preserved, not sorted.
        let text = v.render();
        assert!(text.find("\"b\"").expect("b") < text.find("\"a\"").expect("a"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""aébA 😀 \t""#).expect("escapes");
        assert_eq!(v, Json::Str("aébA 😀 \t".into()));
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(Json::parse("42").expect("int"), Json::Int(42));
        assert_eq!(Json::parse("-3").expect("neg"), Json::Num(-3.0));
        assert_eq!(Json::parse("2.5e3").expect("exp"), Json::Num(2500.0));
        assert_eq!(
            Json::parse("18446744073709551615").expect("u64 max"),
            Json::Int(u64::MAX)
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn float_roundtrip_exact() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456789, f64::MAX] {
            let text = Json::Num(x).render();
            let back = Json::parse(&text).expect("parses");
            assert_eq!(back.as_f64().expect("num"), x, "float {x} drifted");
        }
    }

    #[test]
    fn get_and_accessors() {
        let v = obj(vec![("k", Json::Int(7))]);
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(7));
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Int(7).as_f64(), Some(7.0));
        assert!(Json::Null.as_str().is_none());
    }
}
