//! The sharded campaign runner.
//!
//! Tasks are pre-loaded into an mpsc channel (heaviest cost tier first —
//! longest-processing-time order) and a pool of `std::thread` workers
//! pulls from the shared receiver: an idle worker "steals" the next task
//! the moment it frees up, so load balances itself without a scheduler.
//! Each worker:
//!
//! 1. builds a fresh [`SimCtx`] for the task (private counters, an empty
//!    codebook cache, the task's link-gain cache policy),
//! 2. runs the experiment under `catch_unwind` (a panic becomes a
//!    [`RunStatus::Panicked`] record, not a dead campaign),
//! 3. snapshots wall time + the context's scheduler counters into a
//!    [`RunRecord`].
//!
//! Determinism: a task's result depends only on `(experiment id, seed,
//! quick)` — experiments derive all randomness from the seed via labelled
//! `SimRng` substreams and share no mutable state across tasks — and the
//! collected records are re-sorted into matrix order. Worker count and
//! scheduling therefore cannot change any byte of any artifact, only the
//! wall-time metadata.

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::{CampaignConfig, CampaignResult, RunRecord, RunStatus, TaskSpec};
use mmwave_channel::PruneMode;
use mmwave_phy::CodebookPrebuild;
use mmwave_sim::ctx::{CacheMode, SimCtx};

/// Run the campaign matrix; blocks until every task completed.
pub fn run(cfg: &CampaignConfig) -> CampaignResult {
    run_tasks(cfg, cfg.tasks())
}

/// [`run`], but with every task's link-gain cache forced to `mode`. The
/// equivalence suites run the same matrix under [`CacheMode::Bypass`] to
/// prove the cache never changes an artifact byte.
pub fn run_with_cache_mode(cfg: &CampaignConfig, mode: CacheMode) -> CampaignResult {
    let mut tasks = cfg.tasks();
    for t in &mut tasks {
        t.cache_mode = mode;
    }
    run_tasks(cfg, tasks)
}

/// [`run`], but with every task's spatial prune mode forced to `mode`.
/// The differential suite runs the same matrix under
/// [`PruneMode::Audit`] — every pruned pair is re-evaluated through the
/// full radiometric chain and asserted below the coupling floor — to
/// prove enforce-mode pruning never changes an artifact byte.
///
/// [`PruneMode::Audit`]: mmwave_channel::PruneMode::Audit
pub fn run_with_prune_mode(cfg: &CampaignConfig, mode: PruneMode) -> CampaignResult {
    let mut tasks = cfg.tasks();
    for t in &mut tasks {
        t.prune = Some(mode);
    }
    run_tasks(cfg, tasks)
}

fn run_tasks(cfg: &CampaignConfig, tasks: Vec<TaskSpec>) -> CampaignResult {
    let t0 = Instant::now();
    let jobs = cfg.effective_jobs().min(tasks.len()).max(1);
    let pool = ThreadPool::spawn(tasks, jobs);
    let mut keyed: Vec<((usize, u64), RunRecord)> = pool.records.iter().collect();
    pool.join();

    keyed.sort_by_key(|(key, _)| *key);
    CampaignResult {
        records: keyed.into_iter().map(|(_, r)| r).collect(),
        seeds: cfg.seeds.clone(),
        quick: cfg.quick,
        jobs,
        workers: 0,
        tasks_resumed: 0,
        chunks_streamed: 0,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

/// The in-process worker pool, decoupled from result collection so the
/// streaming control plane ([`crate::control`]) can append each record's
/// artifact chunk the moment it lands instead of waiting for the whole
/// campaign: records arrive on [`ThreadPool::records`] in completion
/// order, keyed by matrix cell.
pub(crate) struct ThreadPool {
    /// Completed records in completion (not matrix) order.
    pub(crate) records: mpsc::Receiver<((usize, u64), RunRecord)>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// LPT-sort `tasks`, prebuild the shared codebook pool, and start
    /// `jobs` worker threads draining the queue.
    pub(crate) fn spawn(mut tasks: Vec<TaskSpec>, jobs: usize) -> ThreadPool {
        silence_worker_panics();

        // Longest-processing-time dispatch: heavy tiers first. The sort is
        // stable, so within a tier the matrix order is preserved.
        tasks.sort_by_key(|t| std::cmp::Reverse(t.exp.cost));

        // Campaign-wide codebook prebuild: pay the cold sector synthesis
        // for the canonical device arrays exactly once, before any worker
        // starts, and share the frozen pool into every task's context.
        // Per-task counters stay a pure function of the task (the pool's
        // contents depend on nothing a task does), so artifacts remain
        // deterministic.
        let prebuild = CodebookPrebuild::standard_devices();

        let (task_tx, task_rx) = mpsc::channel::<TaskSpec>();
        for t in tasks {
            task_tx.send(t).expect("receiver alive");
        }
        drop(task_tx); // workers drain until the channel reports empty+closed

        let shared_rx = Arc::new(Mutex::new(task_rx));
        let (rec_tx, rec_rx) = mpsc::channel::<((usize, u64), RunRecord)>();

        let mut handles = Vec::with_capacity(jobs);
        for w in 0..jobs.max(1) {
            let rx = Arc::clone(&shared_rx);
            let tx = rec_tx.clone();
            let pool = prebuild.clone();
            let handle = std::thread::Builder::new()
                .name(format!("campaign-worker-{w}"))
                .spawn(move || worker_loop(rx, tx, pool))
                .expect("spawn campaign worker");
            handles.push(handle);
        }
        ThreadPool {
            records: rec_rx,
            handles,
        }
    }

    /// Join every worker thread. Call after draining [`Self::records`].
    pub(crate) fn join(self) {
        for w in self.handles {
            w.join()
                .expect("campaign worker infrastructure must not panic");
        }
    }
}

fn worker_loop(
    rx: Arc<Mutex<mpsc::Receiver<TaskSpec>>>,
    tx: mpsc::Sender<((usize, u64), RunRecord)>,
    pool: CodebookPrebuild,
) {
    loop {
        // Hold the lock only for the receive, not for the run. `recv`
        // keeps yielding buffered tasks after the sender dropped and only
        // errors once the channel is both empty and closed.
        let task = match rx.lock().expect("task channel lock").recv() {
            Ok(t) => t,
            Err(_) => return,
        };
        let record = run_task_prebuilt(&task, &pool);
        if tx.send(((task.exp_index, task.seed), record)).is_err() {
            return; // collector gone; nothing left to report to
        }
    }
}

/// Execute one matrix cell, isolating panics and collecting metrics,
/// without a prebuilt codebook pool (standalone/diagnostic use; the
/// campaign proper goes through [`run_task_prebuilt`]).
pub fn run_task(task: &TaskSpec) -> RunRecord {
    run_task_inner(task, None)
}

/// [`run_task`] with a campaign-wide prebuilt codebook pool installed
/// into the task's context before the experiment runs.
pub fn run_task_prebuilt(task: &TaskSpec, pool: &CodebookPrebuild) -> RunRecord {
    run_task_inner(task, Some(pool))
}

fn run_task_inner(task: &TaskSpec, pool: Option<&CodebookPrebuild>) -> RunRecord {
    // A fresh context per task: the counters and the codebook cache are
    // born empty, so the counters (and thus artifact bytes) are a pure
    // function of the task regardless of which worker ran what before.
    let ctx = SimCtx::with_cache_mode(task.cache_mode);
    if let Some(pool) = pool {
        pool.install(&ctx);
    }
    if let Some(kind) = task.cc {
        mmwave_transport::cc::install_override(&ctx, kind);
    }
    if let Some(mode) = task.prune {
        mmwave_channel::spatial::install_override(&ctx, mode);
    }
    let t0 = Instant::now();
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        (task.exp.run)(&ctx, task.quick, task.seed)
    }));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    // The context outlives a panicking run: whatever the run scheduled
    // before dying is still useful failure forensics.
    let engine = ctx.counters();

    match outcome {
        Ok(report) => {
            let status = if report.passed() {
                RunStatus::Pass
            } else {
                RunStatus::ShapeFail
            };
            RunRecord {
                experiment: report.id.to_string(),
                title: report.title.to_string(),
                seed: task.seed,
                quick: task.quick,
                scenario: task.exp.scenario.to_string(),
                status,
                violations: report.violations,
                output: report.output,
                panic_message: None,
                wall_ms,
                engine,
            }
        }
        Err(payload) => RunRecord {
            experiment: task.exp.id.to_string(),
            title: task.exp.title.to_string(),
            seed: task.seed,
            quick: task.quick,
            scenario: task.exp.scenario.to_string(),
            status: RunStatus::Panicked,
            violations: Vec::new(),
            output: String::new(),
            panic_message: Some(panic_payload_message(payload.as_ref())),
            wall_ms,
            engine,
        },
    }
}

fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// stderr backtrace spam for campaign worker threads — their panics are
/// captured into `RunRecord`s — while delegating unchanged for every other
/// thread. (The worker subprocess loop runs its tasks on a thread named
/// with the same prefix for the same reason.)
pub(crate) fn silence_worker_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let in_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("campaign-worker-"));
            if !in_worker {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_core::experiments::{CostTier, Experiment, RunReport};

    fn fake(id: &'static str, run: fn(&SimCtx, bool, u64) -> RunReport) -> &'static Experiment {
        Box::leak(Box::new(Experiment {
            id,
            title: id,
            cost: CostTier::Fast,
            scenario: "test-rig",
            run,
        }))
    }

    fn passing(_ctx: &SimCtx, _q: bool, seed: u64) -> RunReport {
        RunReport {
            id: "ok",
            title: "ok",
            output: format!("seed={seed}"),
            violations: vec![],
        }
    }

    fn failing(_ctx: &SimCtx, _q: bool, _s: u64) -> RunReport {
        RunReport {
            id: "bad",
            title: "bad",
            output: String::new(),
            violations: vec!["threshold off".into()],
        }
    }

    fn panicking(_ctx: &SimCtx, _q: bool, _s: u64) -> RunReport {
        panic!("simulated experiment crash");
    }

    #[test]
    fn campaign_survives_panicking_experiment() {
        let cfg = CampaignConfig {
            experiments: vec![
                fake("ok", passing),
                fake("boom", panicking),
                fake("bad", failing),
            ],
            seeds: vec![1, 2],
            quick: true,
            jobs: 3,
            cc: None,
            prune: None,
        };
        let result = run(&cfg);
        assert_eq!(result.records.len(), 6);
        let (pass, shape, panicked) = result.counts();
        assert_eq!((pass, shape, panicked), (2, 2, 2));
        assert!(!result.all_passed());
        let boom: Vec<_> = result
            .records
            .iter()
            .filter(|r| r.status == RunStatus::Panicked)
            .collect();
        assert_eq!(boom.len(), 2);
        for r in boom {
            assert_eq!(r.experiment, "boom");
            assert_eq!(
                r.panic_message.as_deref(),
                Some("simulated experiment crash")
            );
        }
    }

    #[test]
    fn records_come_back_in_matrix_order_any_jobs() {
        let cfg1 = CampaignConfig {
            experiments: vec![fake("a", passing), fake("b", passing)],
            seeds: vec![5, 9],
            quick: true,
            jobs: 1,
            cc: None,
            prune: None,
        };
        let mut cfg4 = cfg1.clone();
        cfg4.jobs = 4;
        for result in [run(&cfg1), run(&cfg4)] {
            let order: Vec<(String, u64)> = result
                .records
                .iter()
                .map(|r| (r.experiment.clone(), r.seed))
                .collect();
            // "a"/"b" pass `passing`, whose report id is "ok"; order is by
            // matrix position, so seeds iterate within each experiment.
            assert_eq!(
                order.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
                vec![5, 9, 5, 9]
            );
        }
    }

    #[test]
    fn run_task_reports_wall_time_and_counters() {
        let t = TaskSpec {
            exp: fake("ok", passing),
            exp_index: 0,
            seed: 3,
            quick: true,
            cache_mode: CacheMode::Cached,
            cc: None,
            prune: None,
        };
        let rec = run_task(&t);
        assert!(rec.status.is_pass());
        assert!(rec.wall_ms >= 0.0);
        assert_eq!(rec.output, "seed=3");
    }
}
