//! Structured campaign artifacts: the manifest and per-run reports.
//!
//! Layout under the output directory:
//!
//! ```text
//! <out>/manifest.json          — campaign summary + index of runs
//! <out>/runs/<id>-s<seed>.json — one structured report per matrix cell
//! ```
//!
//! Everything except *execution metadata* is a pure function of the
//! campaign matrix, so artifacts produced with different `--jobs` values
//! (or `--workers` process counts, or a `--resume` rerun) are
//! byte-identical after [`normalize_execution`]. Execution metadata is
//! exactly: every `wall_ms` field, the manifest's `jobs` / `workers` /
//! `tasks_resumed` / `chunks_streamed` fields, and every `chunk_hash`
//! (which hashes on-disk chunk bytes — wall time included — so it is
//! integrity metadata, not campaign physics).
//!
//! Schemas (see DESIGN.md for the field-by-field description):
//!
//! * manifest: `schema = "mmwave-campaign/2"` (v2 added the streaming
//!   control-plane execution fields: `workers`, `tasks_resumed`,
//!   `chunks_streamed`, and a per-run `chunk_hash` integrity line)
//! * run:      `schema = "mmwave-campaign-run/9"` (v2 added the
//!   `engine.link_gain_*` cache counters; v3 added the `scenario` label
//!   and the `engine.scenario_mutations` / `engine.faults_injected`
//!   fault-scenario counters; v4 added the `engine.codebook_hits` /
//!   `engine.codebook_misses` pattern-synthesis cache counters; v5
//!   sources every `engine.*` counter from the task's private
//!   [`mmwave_sim::ctx::SimCtx`] instead of thread-local accumulators —
//!   same fields, now provably isolated per task; v6 added the
//!   `engine.cc_reports_folded` / `engine.cc_patterns_installed` /
//!   `engine.cc_loss_epochs` congestion-plane counters; v7 added the
//!   `engine.codebook_prebuilt_hits` counter for cache misses resolved
//!   from the campaign-wide prebuilt codebook pool; v8 added the
//!   `engine.spatial_pruned_pairs` / `engine.spatial_zone_invalidations`
//!   interference-graph counters; v9 rides the process-sharded control
//!   plane: run reports double as the streamed artifact *chunks* the
//!   control plane appends incrementally and the worker protocol carries
//!   verbatim — the fields are unchanged, the engine block is now encoded
//!   and decoded through [`EngineCounters::FIELDS`] so the wire
//!   marshalling cannot drift from the schema)

use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::{CampaignResult, RunRecord, RunStatus};
use mmwave_sim::metrics::EngineCounters;

pub const MANIFEST_SCHEMA: &str = "mmwave-campaign/2";
pub const RUN_SCHEMA: &str = "mmwave-campaign-run/9";

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Relative artifact path for one run: `runs/<id>-s<seed>.json`.
pub fn run_artifact_name(experiment: &str, seed: u64) -> String {
    format!("runs/{experiment}-s{seed}.json")
}

/// Encode one run record.
pub fn run_to_json(r: &RunRecord) -> Json {
    obj(vec![
        ("schema", Json::Str(RUN_SCHEMA.into())),
        ("experiment", Json::Str(r.experiment.clone())),
        ("title", Json::Str(r.title.clone())),
        ("seed", Json::Int(r.seed)),
        ("quick", Json::Bool(r.quick)),
        ("scenario", Json::Str(r.scenario.clone())),
        ("status", Json::Str(r.status.as_str().into())),
        (
            "violations",
            Json::Arr(r.violations.iter().map(|v| Json::Str(v.clone())).collect()),
        ),
        (
            "panic",
            r.panic_message.clone().map_or(Json::Null, Json::Str),
        ),
        ("output", Json::Str(r.output.clone())),
        ("wall_ms", Json::Num(r.wall_ms)),
        (
            "engine",
            // Encoded from the counter field table so the schema, the wire
            // protocol, and the struct can never disagree on field set or
            // order.
            Json::Obj(
                r.engine
                    .fields()
                    .map(|(name, value)| (name.to_string(), Json::Int(value)))
                    .collect(),
            ),
        ),
    ])
}

/// Decode one run record (inverse of [`run_to_json`]).
pub fn run_from_json(v: &Json) -> Result<RunRecord, String> {
    let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field '{k}'"));
    let schema = field("schema")?.as_str().ok_or("schema must be a string")?;
    if schema != RUN_SCHEMA {
        return Err(format!("unknown run schema '{schema}'"));
    }
    let engine_json = field("engine")?;
    let mut engine = EngineCounters::default();
    for name in EngineCounters::FIELDS {
        let value = engine_json
            .get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("engine.{name} must be a non-negative integer"))?;
        assert!(engine.set(name, value), "FIELDS names are valid");
    }
    Ok(RunRecord {
        experiment: field("experiment")?
            .as_str()
            .ok_or("experiment must be a string")?
            .into(),
        title: field("title")?
            .as_str()
            .ok_or("title must be a string")?
            .into(),
        seed: field("seed")?
            .as_u64()
            .ok_or("seed must be a non-negative integer")?,
        quick: field("quick")?.as_bool().ok_or("quick must be a bool")?,
        scenario: field("scenario")?
            .as_str()
            .ok_or("scenario must be a string")?
            .into(),
        status: field("status")?
            .as_str()
            .and_then(RunStatus::from_str)
            .ok_or("status must be pass|shape-fail|panicked")?,
        violations: field("violations")?
            .as_arr()
            .ok_or("violations must be an array")?
            .iter()
            .map(|x| {
                x.as_str()
                    .map(String::from)
                    .ok_or("violation must be a string")
            })
            .collect::<Result<_, _>>()?,
        panic_message: match field("panic")? {
            Json::Null => None,
            Json::Str(s) => Some(s.clone()),
            _ => return Err("panic must be null or a string".into()),
        },
        output: field("output")?
            .as_str()
            .ok_or("output must be a string")?
            .into(),
        wall_ms: field("wall_ms")?
            .as_f64()
            .ok_or("wall_ms must be a number")?,
        engine,
    })
}

/// Encode the campaign manifest: config echo, totals, and a run index.
///
/// Each run line carries a `chunk_hash` — the FNV-1a 64 hash of the run's
/// on-disk artifact chunk bytes (exactly what [`run_to_json`] renders; the
/// codec round-trips bit-exactly, so re-encoding a decoded chunk
/// reproduces the disk bytes). The resumable control-plane manifest
/// records the same hashes, making the two indexes cross-checkable.
pub fn manifest_to_json(result: &CampaignResult) -> Json {
    let (passed, shape_failed, panicked) = result.counts();
    obj(vec![
        ("schema", Json::Str(MANIFEST_SCHEMA.into())),
        ("quick", Json::Bool(result.quick)),
        (
            "seeds",
            Json::Arr(result.seeds.iter().map(|&s| Json::Int(s)).collect()),
        ),
        ("total_runs", Json::Int(result.records.len() as u64)),
        ("passed", Json::Int(passed as u64)),
        ("shape_failed", Json::Int(shape_failed as u64)),
        ("panicked", Json::Int(panicked as u64)),
        ("jobs", Json::Int(result.jobs as u64)),
        ("workers", Json::Int(result.workers as u64)),
        ("tasks_resumed", Json::Int(result.tasks_resumed)),
        ("chunks_streamed", Json::Int(result.chunks_streamed)),
        ("wall_ms", Json::Num(result.wall_ms)),
        (
            "runs",
            Json::Arr(
                result
                    .records
                    .iter()
                    .map(|r| {
                        let chunk = run_to_json(r).render();
                        obj(vec![
                            ("experiment", Json::Str(r.experiment.clone())),
                            ("title", Json::Str(r.title.clone())),
                            ("seed", Json::Int(r.seed)),
                            ("status", Json::Str(r.status.as_str().into())),
                            (
                                "artifact",
                                Json::Str(run_artifact_name(&r.experiment, r.seed)),
                            ),
                            (
                                "chunk_hash",
                                Json::Str(format!(
                                    "{:016x}",
                                    crate::manifest::fnv1a64(chunk.as_bytes())
                                )),
                            ),
                            ("wall_ms", Json::Num(r.wall_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Zero out execution metadata in place, at any nesting depth: every
/// `wall_ms` field, the `jobs` / `workers` / `tasks_resumed` /
/// `chunks_streamed` scheduling fields, and every `chunk_hash` (it hashes
/// chunk bytes that include a wall time). After this, artifacts from the
/// same matrix are byte-identical regardless of worker count, process
/// sharding, or how many tasks a `--resume` rerun skipped.
pub fn normalize_execution(v: &mut Json) {
    match v {
        Json::Obj(fields) => {
            for (k, val) in fields.iter_mut() {
                match k.as_str() {
                    "wall_ms" => *val = Json::Num(0.0),
                    "jobs" | "workers" | "tasks_resumed" | "chunks_streamed" => *val = Json::Int(0),
                    "chunk_hash" => *val = Json::Str("0000000000000000".into()),
                    _ => normalize_execution(val),
                }
            }
        }
        Json::Arr(items) => {
            for item in items.iter_mut() {
                normalize_execution(item);
            }
        }
        _ => {}
    }
}

/// Render `v` with execution metadata masked — the canonical byte form
/// every determinism/equivalence suite compares. One definition instead
/// of a per-test reimplementation: a new volatile field gets masked here
/// (and in [`normalize_execution`]) exactly once.
pub fn canonicalize(v: &Json) -> String {
    let mut c = v.clone();
    normalize_execution(&mut c);
    c.render()
}

/// [`canonicalize`] for artifact text read back from disk (chunk files,
/// written manifests). Errors on unparseable JSON.
pub fn canonicalize_text(text: &str) -> Result<String, String> {
    Ok(canonicalize(&Json::parse(text).map_err(|e| e.to_string())?))
}

/// The full canonical artifact set for a completed campaign, in artifact
/// order: `manifest.json` first, then one `runs/<id>-s<seed>.json` chunk
/// per record. Each body is [`canonicalize`]d, so two sets from the same
/// matrix compare byte-equal regardless of jobs/workers/resume.
pub fn canonical_artifacts(result: &CampaignResult) -> Vec<(String, String)> {
    let mut files = Vec::with_capacity(result.records.len() + 1);
    files.push((
        "manifest.json".to_string(),
        canonicalize(&manifest_to_json(result)),
    ));
    for r in &result.records {
        files.push((
            run_artifact_name(&r.experiment, r.seed),
            canonicalize(&run_to_json(r)),
        ));
    }
    files
}

/// [`canonical_artifacts`] folded into one diffable document (the golden
/// test's on-disk format): `=== <name> ===` headers, a blank line after
/// each body.
pub fn canonical_document(result: &CampaignResult) -> String {
    let mut doc = String::new();
    for (name, body) in canonical_artifacts(result) {
        doc.push_str(&format!("=== {name} ===\n"));
        doc.push_str(&body);
        doc.push('\n');
    }
    doc
}

/// Write `manifest.json` plus every per-run report under `out`.
/// Returns the manifest path.
pub fn write_artifacts(result: &CampaignResult, out: &Path) -> io::Result<PathBuf> {
    std::fs::create_dir_all(out.join("runs"))?;
    for r in &result.records {
        let path = out.join(run_artifact_name(&r.experiment, r.seed));
        std::fs::write(path, run_to_json(r).render())?;
    }
    let manifest_path = out.join("manifest.json");
    std::fs::write(&manifest_path, manifest_to_json(result).render())?;
    Ok(manifest_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(status: RunStatus) -> RunRecord {
        RunRecord {
            experiment: "fig09".into(),
            title: "Fig. 9: WiGig data frame length".into(),
            seed: 42,
            quick: true,
            scenario: "point-to-point".into(),
            status,
            violations: if status == RunStatus::ShapeFail {
                vec!["median off by 2×".into()]
            } else {
                vec![]
            },
            output: "== table ==\nrow 1\n".into(),
            panic_message: if status == RunStatus::Panicked {
                Some("boom".into())
            } else {
                None
            },
            wall_ms: 12.5,
            engine: EngineCounters {
                events_popped: 1000,
                events_cancelled: 17,
                peak_queue_depth: 23,
                link_gain_hits: 640,
                link_gain_misses: 12,
                link_gain_invalidations: 3,
                scenario_mutations: 5,
                faults_injected: 2,
                codebook_hits: 6,
                codebook_misses: 4,
                codebook_prebuilt_hits: 3,
                cc_reports_folded: 31,
                cc_patterns_installed: 19,
                cc_loss_epochs: 2,
                spatial_pruned_pairs: 11,
                spatial_zone_invalidations: 1,
            },
        }
    }

    #[test]
    fn run_record_roundtrips_through_json_text() {
        for status in [RunStatus::Pass, RunStatus::ShapeFail, RunStatus::Panicked] {
            let r = record(status);
            let text = run_to_json(&r).render();
            let back = run_from_json(&Json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back.experiment, r.experiment);
            assert_eq!(back.scenario, r.scenario);
            assert_eq!(back.status, r.status);
            assert_eq!(back.violations, r.violations);
            assert_eq!(back.panic_message, r.panic_message);
            assert_eq!(back.output, r.output);
            assert_eq!(back.wall_ms, r.wall_ms);
            assert_eq!(back.engine, r.engine);
        }
    }

    #[test]
    fn decode_rejects_wrong_schema_and_missing_fields() {
        let mut j = run_to_json(&record(RunStatus::Pass));
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Str("other/9".into());
        }
        assert!(run_from_json(&j).is_err());
        assert!(run_from_json(&Json::Obj(vec![])).is_err());
    }

    fn result() -> CampaignResult {
        CampaignResult {
            records: vec![record(RunStatus::Pass)],
            seeds: vec![42],
            quick: true,
            jobs: 8,
            workers: 2,
            tasks_resumed: 3,
            chunks_streamed: 5,
            wall_ms: 777.7,
        }
    }

    #[test]
    fn normalize_zeroes_execution_metadata() {
        let mut m = manifest_to_json(&result());
        normalize_execution(&mut m);
        assert_eq!(m.get("wall_ms"), Some(&Json::Num(0.0)));
        assert_eq!(m.get("jobs"), Some(&Json::Int(0)));
        assert_eq!(m.get("workers"), Some(&Json::Int(0)));
        assert_eq!(m.get("tasks_resumed"), Some(&Json::Int(0)));
        assert_eq!(m.get("chunks_streamed"), Some(&Json::Int(0)));
        let runs = m.get("runs").and_then(Json::as_arr).expect("runs");
        assert_eq!(runs[0].get("wall_ms"), Some(&Json::Num(0.0)));
        assert_eq!(
            runs[0].get("chunk_hash"),
            Some(&Json::Str("0000000000000000".into()))
        );
    }

    #[test]
    fn canonical_artifacts_mask_only_execution_metadata() {
        // Same matrix, different execution metadata: canonical bytes must
        // agree; raw manifests must not (the fields exist and differ).
        let a = result();
        let mut b = result();
        b.jobs = 1;
        b.workers = 0;
        b.tasks_resumed = 0;
        b.chunks_streamed = 1;
        b.wall_ms = 1.0;
        b.records[0].wall_ms = 99.0;
        assert_ne!(manifest_to_json(&a).render(), manifest_to_json(&b).render());
        assert_eq!(canonical_artifacts(&a), canonical_artifacts(&b));
        // And the document form round-trips through disk text.
        let (name, body) = &canonical_artifacts(&a)[1];
        assert_eq!(name, "runs/fig09-s42.json");
        let raw = run_to_json(&a.records[0]).render();
        assert_eq!(&canonicalize_text(&raw).expect("parses"), body);
        let doc = canonical_document(&a);
        assert!(doc.starts_with("=== manifest.json ===\n"));
        assert!(doc.contains("=== runs/fig09-s42.json ===\n"));
    }

    #[test]
    fn artifact_names_are_stable() {
        assert_eq!(run_artifact_name("fig12", 7), "runs/fig12-s7.json");
    }
}
