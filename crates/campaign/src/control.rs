//! The campaign control plane: streaming, process-sharded, resumable.
//!
//! [`run_streaming`] splits the old monolithic "run everything, then
//! write everything" runner into two layers:
//!
//! * **Control plane** (this module, in the parent process): plans the
//!   task matrix, decides what a `--resume` can skip, streams tasks to
//!   workers, and — the key structural change — appends each task's
//!   artifact **chunk** (`runs/<id>-s<seed>.json`) plus a
//!   [`crate::manifest`] ledger line the moment the task completes,
//!   instead of buffering the whole campaign in memory.
//! * **Worker datapath**: either the in-process thread pool
//!   (`workers == 0`, reusing [`runner::ThreadPool`]) or `workers`
//!   subprocesses (`campaign worker`) driven over stdio pipes with the
//!   [`crate::proto`] framing. Each task runs on a private `SimCtx`
//!   either way, so artifact bytes are a pure function of the task — the
//!   process-sharded-vs-in-process equivalence suite diffs the two
//!   datapaths byte for byte.
//!
//! Crash-recovery invariants (tested in `tests/resume.rs`):
//!
//! 1. **Write-then-record**: a manifest line is appended only after its
//!    chunk file is fully on disk. A crash leaves at worst an unrecorded
//!    or torn artifact that the rerun rewrites.
//! 2. **Verify-before-skip**: `--resume` skips a task only if its
//!    manifest line parses, the matrix fingerprint matches, and the chunk
//!    on disk hashes clean at the recorded length. Corruption of any of
//!    the three degrades to re-execution, never to a wrong artifact.
//! 3. **Byte-stability**: a resumed campaign's final artifact set is
//!    byte-identical (after execution-metadata normalization) to a fresh
//!    run — resumed records are decoded from their chunks with the same
//!    codec that wrote them, and the codec round-trips exactly.
//!
//! Worker-process failure is contained the same way experiment panics
//! are: a task whose worker died mid-frame is retried once on a
//! respawned worker, then surfaced as a `panicked` record, so the
//! campaign always completes with one record per matrix cell.

use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::manifest::{self, ChunkEntry, Manifest, ManifestWriter};
use crate::proto::{self, Msg, WireTask};
use crate::{artifact, runner, CampaignConfig, CampaignResult, RunRecord, RunStatus, TaskSpec};

/// Execution knobs for the streaming control plane.
#[derive(Clone, Debug)]
pub struct ControlOpts {
    /// Worker *processes* to shard across. `0` keeps the datapath
    /// in-process (the `cfg.jobs` thread pool) while still streaming
    /// chunks and maintaining the manifest.
    pub workers: usize,
    /// Skip tasks whose chunk already exists and hashes clean against the
    /// manifest (requires a matching matrix fingerprint).
    pub resume: bool,
    /// Command line that starts one worker process. Empty means "this
    /// executable with the single argument `worker`" — what the `campaign`
    /// CLI wants. Tests point it at `env!("CARGO_BIN_EXE_campaign")`.
    pub worker_cmd: Vec<String>,
}

impl Default for ControlOpts {
    fn default() -> Self {
        ControlOpts {
            workers: 0,
            resume: false,
            worker_cmd: Vec::new(),
        }
    }
}

/// What a streaming campaign did, beyond the [`CampaignResult`] itself.
pub struct ControlSummary {
    /// Records in matrix order, resumed and executed merged.
    pub result: CampaignResult,
    /// Path of the written `manifest.json`.
    pub manifest_path: PathBuf,
    /// `(experiment, seed)` cells skipped because their chunk verified
    /// hash-clean, in matrix order.
    pub resumed: Vec<(String, u64)>,
    /// `(experiment, seed)` cells actually executed this invocation, in
    /// matrix order.
    pub executed: Vec<(String, u64)>,
}

/// Run the campaign through the streaming control plane. Blocks until
/// every matrix cell has a record; artifacts land under `out` as the
/// campaign progresses (chunks + `campaign.manifest`), with the summary
/// `manifest.json` written last.
pub fn run_streaming(
    cfg: &CampaignConfig,
    out: &Path,
    opts: &ControlOpts,
) -> io::Result<ControlSummary> {
    let t0 = Instant::now();
    std::fs::create_dir_all(out.join("runs"))?;

    let tasks = cfg.tasks();
    let fp = manifest::fingerprint(&tasks);

    // Resume pass: a task is skippable iff the previous manifest matches
    // this matrix and its chunk verifies (invariant 2). Everything else
    // stays pending.
    let mut resumed: Vec<((usize, u64), RunRecord)> = Vec::new();
    let mut carried: Vec<ChunkEntry> = Vec::new();
    let mut pending: Vec<TaskSpec> = Vec::new();
    let previous = if opts.resume {
        Manifest::load(out).filter(|m| m.fingerprint == fp)
    } else {
        None
    };
    for task in tasks {
        let entry = previous
            .as_ref()
            .and_then(|m| m.entry(task.exp.id, task.seed))
            .filter(|e| e.rel_path == artifact::run_artifact_name(task.exp.id, task.seed))
            .filter(|e| e.verify(out));
        // Hash-clean bytes can still fail to decode (e.g. a chunk from an
        // older schema whose manifest somehow fingerprint-matched); that
        // also degrades to re-execution.
        let record = entry.and_then(|e| {
            let text = std::fs::read_to_string(out.join(&e.rel_path)).ok()?;
            let parsed = crate::json::Json::parse(&text).ok()?;
            let rec = artifact::run_from_json(&parsed).ok()?;
            Some((e.clone(), rec))
        });
        match record {
            Some((entry, rec)) => {
                carried.push(entry);
                resumed.push(((task.exp_index, task.seed), rec));
            }
            None => pending.push(task),
        }
    }

    // The manifest is rewritten (header + carried entries) rather than
    // appended to: stale lines, torn tails and superseded duplicates die
    // here, and every later append lands after a clean prefix.
    let mut ledger = ManifestWriter::create(out, fp, &carried)?;

    let jobs = cfg.effective_jobs().min(pending.len()).max(1);
    let mut executed: Vec<((usize, u64), RunRecord)> = Vec::with_capacity(pending.len());
    let expected = pending.len();
    let mut chunks_streamed: u64 = 0;

    // Dispatch the pending tasks, streaming each completed record into
    // its chunk + ledger line as it arrives (invariant 1).
    let mut stream_record =
        |key: (usize, u64), record: RunRecord, ledger: &mut ManifestWriter| -> io::Result<()> {
            let rel = artifact::run_artifact_name(&record.experiment, record.seed);
            let chunk = artifact::run_to_json(&record).render();
            std::fs::write(out.join(&rel), &chunk)?;
            ledger.append(&ChunkEntry {
                hash: manifest::fnv1a64(chunk.as_bytes()),
                len: chunk.len() as u64,
                experiment: record.experiment.clone(),
                seed: record.seed,
                rel_path: rel,
            })?;
            chunks_streamed += 1;
            executed.push((key, record));
            Ok(())
        };

    if opts.workers == 0 {
        let pool = runner::ThreadPool::spawn(pending, jobs);
        for (key, record) in pool.records.iter() {
            stream_record(key, record, &mut ledger)?;
        }
        pool.join();
    } else {
        let (rec_tx, rec_rx) = mpsc::channel::<((usize, u64), RunRecord)>();
        let queue = Arc::new(Mutex::new(plan_queue(pending)));
        let worker_cmd = resolve_worker_cmd(&opts.worker_cmd)?;
        let mut drivers = Vec::new();
        for w in 0..opts.workers {
            let queue = Arc::clone(&queue);
            let tx = rec_tx.clone();
            let cmd = worker_cmd.clone();
            drivers.push(
                std::thread::Builder::new()
                    .name(format!("campaign-driver-{w}"))
                    .spawn(move || drive_worker(&cmd, &queue, &tx))
                    .expect("spawn worker driver"),
            );
        }
        drop(rec_tx);
        let mut received = 0usize;
        for (key, record) in rec_rx.iter() {
            stream_record(key, record, &mut ledger)?;
            received += 1;
        }
        for d in drivers {
            d.join().expect("worker driver must not panic");
        }
        assert_eq!(
            received, expected,
            "control plane lost records (driver bug)"
        );
    }

    // Merge and re-sort into matrix order: scheduling, sharding and
    // resume order are all invisible in the final artifact set.
    let tasks_resumed = resumed.len() as u64;
    let resumed_keys: Vec<(String, u64)> = sorted_keys(&resumed);
    let executed_keys: Vec<(String, u64)> = sorted_keys(&executed);
    let mut keyed = resumed;
    keyed.extend(executed);
    keyed.sort_by_key(|(key, _)| *key);

    let result = CampaignResult {
        records: keyed.into_iter().map(|(_, r)| r).collect(),
        seeds: cfg.seeds.clone(),
        quick: cfg.quick,
        jobs,
        workers: opts.workers,
        tasks_resumed,
        chunks_streamed,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    };
    let manifest_path = out.join("manifest.json");
    std::fs::write(&manifest_path, artifact::manifest_to_json(&result).render())?;
    Ok(ControlSummary {
        result,
        manifest_path,
        resumed: resumed_keys,
        executed: executed_keys,
    })
}

fn sorted_keys(records: &[((usize, u64), RunRecord)]) -> Vec<(String, u64)> {
    let mut keyed: Vec<_> = records.iter().collect();
    keyed.sort_by_key(|(key, _)| *key);
    keyed
        .into_iter()
        .map(|(_, r)| (r.experiment.clone(), r.seed))
        .collect()
}

/// One queued dispatch: the wire form plus how often it already failed on
/// a dying worker.
struct QueuedTask {
    wire: WireTask,
    key: (usize, u64),
    retries: u32,
}

fn plan_queue(mut pending: Vec<TaskSpec>) -> VecDeque<QueuedTask> {
    // Same LPT order the in-process pool uses.
    pending.sort_by_key(|t| std::cmp::Reverse(t.exp.cost));
    pending
        .into_iter()
        .map(|t| QueuedTask {
            key: (t.exp_index, t.seed),
            wire: WireTask::from_spec(&t),
            retries: 0,
        })
        .collect()
}

fn resolve_worker_cmd(configured: &[String]) -> io::Result<Vec<String>> {
    if !configured.is_empty() {
        return Ok(configured.to_vec());
    }
    let exe = std::env::current_exe()?;
    Ok(vec![exe.to_string_lossy().into_owned(), "worker".into()])
}

fn spawn_worker(cmd: &[String]) -> io::Result<Child> {
    Command::new(&cmd[0])
        .args(&cmd[1..])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        // stderr stays attached: worker diagnostics surface on the
        // campaign's own stderr.
        .spawn()
}

/// Drive one worker process from the shared queue until the queue is
/// empty. Protocol failures (worker killed, torn frame) requeue the
/// in-flight task once and respawn the worker; a task that kills two
/// workers is reported as a `panicked` record so the campaign still
/// completes with a full matrix.
fn drive_worker(
    cmd: &[String],
    queue: &Mutex<VecDeque<QueuedTask>>,
    tx: &mpsc::Sender<((usize, u64), RunRecord)>,
) {
    let mut worker: Option<(Child, BufReader<std::process::ChildStdout>)> = None;
    loop {
        let Some(task) = queue.lock().expect("task queue lock").pop_front() else {
            break;
        };
        // (Re)spawn lazily: a driver that never gets a task never forks.
        if worker.is_none() {
            match spawn_worker(cmd) {
                Ok(mut child) => {
                    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
                    worker = Some((child, stdout));
                }
                Err(e) => {
                    // Cannot shard at all from this driver (bad worker
                    // command, fork limit): fail the task explicitly
                    // rather than stalling the campaign.
                    report_failure(tx, task, &format!("cannot spawn worker: {e}"));
                    continue;
                }
            }
        }
        let (child, stdout) = worker.as_mut().expect("worker just ensured");
        match exchange(child, stdout, &task.wire) {
            Ok(record) => {
                if tx.send((task.key, record)).is_err() {
                    break; // collector gone; stop cleanly
                }
            }
            Err(e) => {
                // The worker is in an unknown state: discard it and either
                // retry the task on a fresh one or give up on the task.
                let (mut child, _) = worker.take().expect("worker present");
                let _ = child.kill();
                let _ = child.wait();
                if task.retries == 0 {
                    queue
                        .lock()
                        .expect("task queue lock")
                        .push_back(QueuedTask { retries: 1, ..task });
                } else {
                    report_failure(tx, task, &format!("worker protocol failure: {e}"));
                }
            }
        }
    }
    if let Some((mut child, _)) = worker {
        let mut stdin = child.stdin.take();
        if let Some(w) = stdin.as_mut() {
            let _ = proto::write_msg(w, &Msg::Done);
        }
        drop(stdin); // EOF, in case the DONE write failed
        let _ = child.wait();
    }
}

/// Send one task, wait for its result.
fn exchange(
    child: &mut Child,
    stdout: &mut BufReader<std::process::ChildStdout>,
    wire: &WireTask,
) -> io::Result<RunRecord> {
    let stdin = child
        .stdin
        .as_mut()
        .ok_or_else(|| io::Error::other("worker stdin closed"))?;
    proto::write_msg(stdin, &Msg::Task(wire.clone()))?;
    match proto::read_msg(stdout)? {
        Some(Msg::Result(record)) => Ok(*record),
        Some(other) => Err(io::Error::other(format!("expected RESULT, got {other:?}"))),
        None => Err(io::Error::other("worker exited before replying")),
    }
}

/// Synthesize the record for a task no worker could complete. Shaped like
/// an experiment panic — status `panicked`, message in `panic_message` —
/// because that is exactly what it is from the campaign's perspective:
/// one cell failed, the matrix completed.
fn report_failure(tx: &mpsc::Sender<((usize, u64), RunRecord)>, task: QueuedTask, message: &str) {
    let (scenario, title) = match task.wire.resolve() {
        Ok(spec) => (spec.exp.scenario.to_string(), spec.exp.title.to_string()),
        Err(_) => ("unknown".to_string(), task.wire.experiment.clone()),
    };
    let record = RunRecord {
        experiment: task.wire.experiment.clone(),
        title,
        seed: task.wire.seed,
        quick: task.wire.quick,
        scenario,
        status: RunStatus::Panicked,
        violations: Vec::new(),
        output: String::new(),
        panic_message: Some(message.to_string()),
        wall_ms: 0.0,
        engine: Default::default(),
    };
    let _ = tx.send((task.key, record));
}
