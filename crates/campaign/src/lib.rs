//! # mmwave-campaign — sharded, deterministic campaign orchestration
//!
//! The paper's contribution is a *measurement campaign*: dozens of setups,
//! seeds and sweep points. This crate is the orchestration layer that runs
//! such a campaign as a first-class object instead of a sequential shell
//! loop:
//!
//! * **Matrix** — a [`CampaignConfig`] selects experiments from the typed
//!   registry ([`mmwave_core::experiments::REGISTRY`]), a seed list, and a
//!   quick/full mode; the cross product is the task matrix.
//! * **Sharding** — [`runner::run`] shards the matrix across a
//!   `std::thread` worker pool. Tasks flow through an mpsc channel that
//!   idle workers pull from (channel-based work stealing), with the
//!   heaviest cost tier dispatched first so the pool drains evenly.
//! * **Control plane / worker datapath** — [`control::run_streaming`]
//!   is the production entry point: it streams tasks to workers (the
//!   in-process pool, or `campaign worker` subprocesses speaking the
//!   [`proto`] stdio framing), appends each completed artifact chunk
//!   incrementally, and maintains a resumable ledger ([`manifest`]) of
//!   per-chunk hashes so an interrupted campaign can `--resume` past
//!   every hash-clean task.
//! * **Determinism** — results are bitwise identical for any worker count
//!   and any scheduling order: each task's randomness is a pure function
//!   of `(experiment id, seed)` (experiments fork labelled `SimRng`
//!   substreams from the seed; nothing is shared between tasks), and
//!   records are re-sorted into matrix order before artifacts are written.
//! * **Isolation** — a panicking experiment is caught with
//!   `catch_unwind`, reported as a failed [`RunRecord`], and the campaign
//!   keeps going; partial failure surfaces as a nonzero exit from the
//!   CLI, not an abort.
//! * **Artifacts** — [`artifact`] writes a campaign manifest plus one
//!   structured JSON report per run ([`json`] is a std-only
//!   encoder/decoder), including wall time and the engine's scheduler
//!   counters (events popped/cancelled, peak queue depth) read from the
//!   task's private [`mmwave_sim::ctx::SimCtx`].
//!
//! Std-only by construction: no crates.io dependencies, so the subsystem
//! builds in hermetic/offline environments.
//!
//! ```
//! use mmwave_campaign::{runner, CampaignConfig};
//! use mmwave_core::experiments;
//!
//! let cfg = CampaignConfig {
//!     experiments: vec![experiments::find("table1").expect("registered")],
//!     seeds: vec![1],
//!     quick: true,
//!     jobs: 2,
//!     cc: None,
//!     prune: None,
//! };
//! let result = runner::run(&cfg);
//! assert_eq!(result.records.len(), 1);
//! assert!(result.records[0].status.is_pass());
//! ```

pub mod artifact;
pub mod control;
pub mod json;
pub mod manifest;
pub mod proto;
pub mod runner;
pub mod worker;

use mmwave_core::experiments::Experiment;
use mmwave_sim::ctx::CacheMode;
use mmwave_sim::metrics::EngineCounters;

/// What to run: the experiment × seed matrix plus execution knobs.
#[derive(Clone)]
pub struct CampaignConfig {
    /// Selected experiments, in manifest order.
    pub experiments: Vec<&'static Experiment>,
    /// Seeds; every experiment runs once per seed.
    pub seeds: Vec<u64>,
    /// Quick mode (shorter campaigns, fewer sweep points).
    pub quick: bool,
    /// Worker threads; 0 means one per available core.
    pub jobs: usize,
    /// Congestion-control override for every TCP flow the campaign's
    /// experiments create (`--cc`); `None` keeps each flow's own choice
    /// (default Reno).
    pub cc: Option<mmwave_transport::CcKind>,
    /// Spatial-prune-mode override for every experiment in the matrix;
    /// `None` keeps each experiment's own choice. See [`TaskSpec::prune`].
    pub prune: Option<mmwave_channel::PruneMode>,
}

impl CampaignConfig {
    /// The full registry at one seed — the default campaign.
    pub fn all(quick: bool, seeds: Vec<u64>, jobs: usize) -> CampaignConfig {
        CampaignConfig {
            experiments: mmwave_core::experiments::REGISTRY.iter().collect(),
            seeds,
            quick,
            jobs,
            cc: None,
            prune: None,
        }
    }

    /// The task matrix in deterministic (experiment, seed) order.
    pub fn tasks(&self) -> Vec<TaskSpec> {
        let mut out = Vec::with_capacity(self.experiments.len() * self.seeds.len());
        for (exp_index, exp) in self.experiments.iter().enumerate() {
            for &seed in &self.seeds {
                out.push(TaskSpec {
                    exp,
                    exp_index,
                    seed,
                    quick: self.quick,
                    cache_mode: CacheMode::Cached,
                    cc: self.cc,
                    prune: self.prune,
                });
            }
        }
        out
    }

    /// Worker count after resolving `jobs == 0` to the core count.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One cell of the campaign matrix.
#[derive(Clone, Copy)]
pub struct TaskSpec {
    /// The experiment descriptor to run.
    pub exp: &'static Experiment,
    /// Position in [`CampaignConfig::experiments`] (manifest order).
    pub exp_index: usize,
    /// The seed passed to the experiment.
    pub seed: u64,
    /// Quick mode flag.
    pub quick: bool,
    /// Link-gain cache policy for this task's [`mmwave_sim::ctx::SimCtx`].
    /// `Cached` for production campaigns; equivalence suites run the same
    /// matrix under `Bypass` to prove caching never changes a byte.
    pub cache_mode: CacheMode,
    /// Congestion-control override installed on the task's context before
    /// the experiment runs.
    pub cc: Option<mmwave_transport::CcKind>,
    /// Spatial-prune-mode override installed on the task's context before
    /// the experiment runs. `None` keeps each experiment's own choice
    /// (default [`PruneMode::Enforce`] where spatial pruning is enabled);
    /// the equivalence suite forces [`PruneMode::Audit`] to prove the
    /// interference graph never changes an artifact byte.
    ///
    /// [`PruneMode::Enforce`]: mmwave_channel::PruneMode::Enforce
    /// [`PruneMode::Audit`]: mmwave_channel::PruneMode::Audit
    pub prune: Option<mmwave_channel::PruneMode>,
}

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// All shape checks held.
    Pass,
    /// The experiment completed but violated shape checks.
    ShapeFail,
    /// The experiment panicked; the campaign continued without it.
    Panicked,
}

impl RunStatus {
    pub fn is_pass(&self) -> bool {
        matches!(self, RunStatus::Pass)
    }

    /// Stable artifact string.
    pub fn as_str(&self) -> &'static str {
        match self {
            RunStatus::Pass => "pass",
            RunStatus::ShapeFail => "shape-fail",
            RunStatus::Panicked => "panicked",
        }
    }

    /// Inverse of [`RunStatus::as_str`].
    pub fn from_str(s: &str) -> Option<RunStatus> {
        match s {
            "pass" => Some(RunStatus::Pass),
            "shape-fail" => Some(RunStatus::ShapeFail),
            "panicked" => Some(RunStatus::Panicked),
            _ => None,
        }
    }
}

/// The structured outcome of one task: everything the artifact records.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Experiment id ("fig09", "table1", …).
    pub experiment: String,
    /// Human title from the registry.
    pub title: String,
    /// The campaign seed this run used.
    pub seed: u64,
    /// Quick mode flag.
    pub quick: bool,
    /// Scenario/rig name from the registry ("point-to-point",
    /// "dynamic-blocker", …) — traces the record back to its geometry.
    pub scenario: String,
    /// Outcome classification.
    pub status: RunStatus,
    /// Shape-check violations (empty on pass or panic).
    pub violations: Vec<String>,
    /// Rendered paper-style output (empty on panic).
    pub output: String,
    /// Panic payload, when `status == Panicked`.
    pub panic_message: Option<String>,
    /// Wall-clock runtime of this task in milliseconds (execution
    /// metadata: excluded from determinism comparisons).
    pub wall_ms: f64,
    /// Scheduler counters accumulated across every engine the run built.
    pub engine: EngineCounters,
}

/// A completed campaign: records in matrix order plus execution metadata.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// One record per task, sorted by (experiment order, seed) — the same
    /// order regardless of worker count or scheduling.
    pub records: Vec<RunRecord>,
    /// Seeds the campaign ran.
    pub seeds: Vec<u64>,
    /// Quick mode flag.
    pub quick: bool,
    /// Worker threads actually used (execution metadata).
    pub jobs: usize,
    /// Worker *processes* the control plane sharded across; 0 when the
    /// datapath stayed in-process (execution metadata).
    pub workers: usize,
    /// Tasks skipped by `--resume` because their chunk verified hash-clean
    /// against the manifest (execution metadata).
    pub tasks_resumed: u64,
    /// Chunks written incrementally by the streaming control plane; 0 for
    /// the buffered [`runner::run`] path (execution metadata).
    pub chunks_streamed: u64,
    /// Total campaign wall time in milliseconds (execution metadata).
    pub wall_ms: f64,
}

impl CampaignResult {
    /// True if every run passed its shape checks and none panicked.
    pub fn all_passed(&self) -> bool {
        self.records.iter().all(|r| r.status.is_pass())
    }

    /// (passed, shape-failed, panicked) counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.records {
            match r.status {
                RunStatus::Pass => c.0 += 1,
                RunStatus::ShapeFail => c.1 += 1,
                RunStatus::Panicked => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_enumerate_matrix_in_order() {
        let cfg = CampaignConfig {
            experiments: mmwave_core::experiments::REGISTRY.iter().take(2).collect(),
            seeds: vec![3, 7],
            quick: true,
            jobs: 1,
            cc: None,
            prune: None,
        };
        let tasks = cfg.tasks();
        assert_eq!(tasks.len(), 4);
        let cells: Vec<(usize, u64)> = tasks.iter().map(|t| (t.exp_index, t.seed)).collect();
        assert_eq!(cells, vec![(0, 3), (0, 7), (1, 3), (1, 7)]);
    }

    #[test]
    fn status_strings_roundtrip() {
        for s in [RunStatus::Pass, RunStatus::ShapeFail, RunStatus::Panicked] {
            assert_eq!(RunStatus::from_str(s.as_str()), Some(s));
        }
        assert_eq!(RunStatus::from_str("weird"), None);
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        let cfg = CampaignConfig {
            experiments: vec![],
            seeds: vec![],
            quick: true,
            jobs: 0,
            cc: None,
            prune: None,
        };
        assert!(cfg.effective_jobs() >= 1);
        let cfg = CampaignConfig {
            experiments: vec![],
            seeds: vec![],
            quick: true,
            jobs: 3,
            cc: None,
            prune: None,
        };
        assert_eq!(cfg.effective_jobs(), 3);
    }
}
