//! The worker datapath: one `campaign worker` subprocess.
//!
//! A worker is a dumb, stateless executor: it reads framed [`Msg::Task`]
//! messages from stdin, runs each on a **private** [`SimCtx`] (fresh per
//! task, exactly like the in-process thread pool — so artifact bytes stay
//! a pure function of the task no matter which process ran it), and
//! writes the completed [`Msg::Result`] back on stdout. It exits on a
//! `DONE` message or a clean stdin EOF.
//!
//! Panic isolation carries over from the in-process runner: the task body
//! runs under `catch_unwind` inside [`runner::run_task_prebuilt`], so an
//! experiment panic becomes a `panicked` record on the wire, not a dead
//! worker. Only a protocol error (torn frame, unknown experiment id —
//! i.e. a control plane this binary cannot serve) terminates the process
//! with a nonzero status; the control plane then respawns or fails the
//! affected task, never the campaign.
//!
//! The worker pays [`CodebookPrebuild::standard_devices`] once at
//! startup, mirroring the campaign-wide prebuild of the in-process pool:
//! per-task `codebook_prebuilt_hits` counters — and therefore artifact
//! bytes — are identical in both datapaths.
//!
//! stdout is the protocol channel, so the experiment layer must never
//! print to it (experiments render into `RunReport::output` strings by
//! design); anything diagnostic goes to stderr, which the control plane
//! leaves attached to its own.
//!
//! [`SimCtx`]: mmwave_sim::ctx::SimCtx
//! [`CodebookPrebuild::standard_devices`]: mmwave_phy::CodebookPrebuild::standard_devices

use std::io::{self, BufReader, BufWriter, Write};

use crate::proto::{self, Msg};
use crate::runner;
use mmwave_phy::CodebookPrebuild;

/// Run the worker loop over this process's stdio until `DONE`/EOF.
/// Returns the process exit code (0 = clean drain, 1 = protocol error).
pub fn worker_main() -> i32 {
    // The runner's panic hook silences threads named `campaign-worker-*`;
    // run the loop on one so a panicking experiment doesn't spray a
    // backtrace over stderr (it is captured into the RunRecord).
    runner::silence_worker_panics();
    let handle = std::thread::Builder::new()
        .name("campaign-worker-proc".to_string())
        .spawn(serve_stdio)
        .expect("spawn worker loop");
    match handle.join() {
        Ok(Ok(())) => 0,
        Ok(Err(e)) => {
            eprintln!("campaign worker: {e}");
            1
        }
        Err(_) => {
            eprintln!("campaign worker: infrastructure panic");
            1
        }
    }
}

fn serve_stdio() -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut input = BufReader::new(stdin.lock());
    let mut output = BufWriter::new(stdout.lock());
    serve(&mut input, &mut output)
}

/// The worker loop over arbitrary streams (unit-testable without pipes).
pub fn serve(input: &mut impl io::BufRead, output: &mut impl Write) -> io::Result<()> {
    let prebuild = CodebookPrebuild::standard_devices();
    loop {
        match proto::read_msg(input)? {
            Some(Msg::Task(wire)) => {
                let task = wire
                    .resolve()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                let record = runner::run_task_prebuilt(&task, &prebuild);
                proto::write_msg(output, &Msg::Result(Box::new(record)))?;
            }
            Some(Msg::Done) | None => return Ok(()),
            Some(Msg::Result(_)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "worker received a RESULT message (control-plane bug)",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::WireTask;
    use crate::RunStatus;
    use mmwave_sim::ctx::CacheMode;
    use std::io::BufReader;

    fn task(seed: u64) -> WireTask {
        WireTask {
            experiment: "table1".into(),
            exp_index: 0,
            seed,
            quick: true,
            cache_mode: CacheMode::Cached,
            cc: None,
            prune: None,
        }
    }

    #[test]
    fn serve_executes_tasks_and_drains_on_done() {
        let mut input = Vec::new();
        proto::write_msg(&mut input, &Msg::Task(task(1))).expect("frame");
        proto::write_msg(&mut input, &Msg::Task(task(2))).expect("frame");
        proto::write_msg(&mut input, &Msg::Done).expect("frame");

        let mut output = Vec::new();
        serve(&mut BufReader::new(&input[..]), &mut output).expect("serve");

        let mut r = BufReader::new(&output[..]);
        for seed in [1u64, 2] {
            let Some(Msg::Result(rec)) = proto::read_msg(&mut r).expect("result") else {
                panic!("expected RESULT for seed {seed}");
            };
            assert_eq!(rec.seed, seed);
            assert_eq!(rec.status, RunStatus::Pass);
            assert!(rec.engine.events_popped > 0, "task actually simulated");
        }
        assert_eq!(proto::read_msg(&mut r).expect("eof"), None);
    }

    #[test]
    fn serve_rejects_unknown_experiments() {
        let mut input = Vec::new();
        let mut bogus = task(1);
        bogus.experiment = "no-such-experiment".into();
        proto::write_msg(&mut input, &Msg::Task(bogus)).expect("frame");
        let mut output = Vec::new();
        let err = serve(&mut BufReader::new(&input[..]), &mut output).expect_err("must error");
        assert!(err.to_string().contains("no-such-experiment"));
    }

    #[test]
    fn serve_treats_eof_as_done() {
        let input: Vec<u8> = Vec::new();
        let mut output = Vec::new();
        serve(&mut BufReader::new(&input[..]), &mut output).expect("clean EOF");
        assert!(output.is_empty());
    }
}
