//! Azimuth angles with wrap-around arithmetic.
//!
//! Beam patterns, angular profiles (Figs. 16–20) and scan positions are all
//! indexed by azimuth. Doing modular arithmetic on raw radians is a classic
//! source of off-by-2π bugs, so [`Angle`] normalizes to (-π, π] and provides
//! the shortest signed difference.

use crate::vec2::Vec2;
use std::f64::consts::{PI, TAU};
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// An azimuth angle, stored normalized to the half-open interval (-π, π].
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Angle(f64);

impl Angle {
    /// Zero azimuth (boresight / +x axis).
    pub const ZERO: Angle = Angle(0.0);

    /// From radians (normalized on construction).
    pub fn from_radians(rad: f64) -> Angle {
        debug_assert!(rad.is_finite());
        let mut a = rad % TAU;
        if a <= -PI {
            a += TAU;
        } else if a > PI {
            a -= TAU;
        }
        Angle(a)
    }

    /// From degrees.
    pub fn from_degrees(deg: f64) -> Angle {
        Angle::from_radians(deg.to_radians())
    }

    /// Radians in (-π, π].
    pub fn radians(self) -> f64 {
        self.0
    }

    /// Degrees in (-180, 180].
    pub fn degrees(self) -> f64 {
        self.0.to_degrees()
    }

    /// Degrees in [0, 360) — convenient for table output.
    pub fn degrees_0_360(self) -> f64 {
        let d = self.degrees();
        if d < 0.0 {
            d + 360.0
        } else {
            d
        }
    }

    /// Unit vector pointing along this azimuth.
    pub fn unit(self) -> Vec2 {
        Vec2::from_angle(self.0)
    }

    /// Shortest signed angular difference `self - other`, in (-π, π].
    pub fn diff(self, other: Angle) -> Angle {
        Angle::from_radians(self.0 - other.0)
    }

    /// Absolute shortest angular distance to `other`, in [0, π].
    pub fn distance(self, other: Angle) -> f64 {
        self.diff(other).0.abs()
    }

    /// True if `self` lies within ± `half_width` of `center` (shortest arc).
    pub fn within(self, center: Angle, half_width: f64) -> bool {
        self.distance(center) <= half_width
    }
}

impl Add for Angle {
    type Output = Angle;
    fn add(self, rhs: Angle) -> Angle {
        Angle::from_radians(self.0 + rhs.0)
    }
}
impl Sub for Angle {
    type Output = Angle;
    fn sub(self, rhs: Angle) -> Angle {
        Angle::from_radians(self.0 - rhs.0)
    }
}
impl Neg for Angle {
    type Output = Angle;
    fn neg(self) -> Angle {
        Angle::from_radians(-self.0)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}°", self.degrees())
    }
}

/// Evenly spaced azimuths covering the full circle: `n` angles starting at
/// `start`, stepping 360°/n. Used by the rotation scans.
pub fn full_circle(n: usize, start: Angle) -> Vec<Angle> {
    assert!(n > 0);
    (0..n)
        .map(|i| start + Angle::from_radians(TAU * i as f64 / n as f64))
        .collect()
}

/// Evenly spaced azimuths on an arc from `from` to `to` inclusive
/// (`n ≥ 2` positions). Mirrors the paper's 100-position semicircle scan.
pub fn arc(n: usize, from: Angle, to: Angle) -> Vec<Angle> {
    assert!(n >= 2);
    let span = to.diff(from).radians();
    (0..n)
        .map(|i| from + Angle::from_radians(span * i as f64 / (n - 1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn normalization() {
        assert!((Angle::from_degrees(370.0).degrees() - 10.0).abs() < 1e-9);
        assert!((Angle::from_degrees(-190.0).degrees() - 170.0).abs() < 1e-9);
        assert!((Angle::from_degrees(180.0).degrees() - 180.0).abs() < 1e-9);
        // -180 normalizes to +180 (the interval is half-open at -π).
        assert!((Angle::from_degrees(-180.0).degrees() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn diff_takes_shortest_arc() {
        let a = Angle::from_degrees(170.0);
        let b = Angle::from_degrees(-170.0);
        assert!((a.diff(b).degrees() + 20.0).abs() < 1e-9);
        assert!((b.diff(a).degrees() - 20.0).abs() < 1e-9);
        assert!((a.distance(b) - 20f64.to_radians()).abs() < EPS);
    }

    #[test]
    fn within_wraps() {
        let c = Angle::from_degrees(175.0);
        assert!(Angle::from_degrees(-175.0).within(c, 15f64.to_radians()));
        assert!(!Angle::from_degrees(-150.0).within(c, 15f64.to_radians()));
    }

    #[test]
    fn unit_vector_matches() {
        let a = Angle::from_degrees(90.0);
        let u = a.unit();
        assert!(u.x.abs() < EPS && (u.y - 1.0).abs() < EPS);
    }

    #[test]
    fn degrees_0_360() {
        assert!((Angle::from_degrees(-90.0).degrees_0_360() - 270.0).abs() < 1e-9);
        assert!((Angle::from_degrees(90.0).degrees_0_360() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn full_circle_spacing() {
        let angles = full_circle(360, Angle::ZERO);
        assert_eq!(angles.len(), 360);
        assert!((angles[90].degrees() - 90.0).abs() < 1e-9);
        assert!((angles[270].degrees() + 90.0).abs() < 1e-9);
    }

    #[test]
    fn arc_endpoints() {
        let a = arc(100, Angle::from_degrees(-90.0), Angle::from_degrees(90.0));
        assert_eq!(a.len(), 100);
        assert!((a[0].degrees() + 90.0).abs() < 1e-9);
        assert!((a[99].degrees() - 90.0).abs() < 1e-9);
        // Monotone increasing along the arc.
        for w in a.windows(2) {
            assert!(w[1].degrees() > w[0].degrees());
        }
    }
}
