//! # mmwave-geom — 2-D geometry for indoor 60 GHz propagation
//!
//! The paper's reflection and interference findings (Figs. 4, 5, 7, 18–20,
//! 23) are geometric phenomena: signals bounce off brick, glass, wood and
//! metal surfaces, sometimes twice, and obstacles block the line of sight.
//! This crate provides the geometric substrate:
//!
//! * [`vec2`] / [`angle`] — points, vectors and azimuth angles with correct
//!   wrap-around arithmetic (every antenna pattern is indexed by azimuth).
//! * [`material`] — reflection losses of the wall materials the paper's
//!   conference room is built from.
//! * [`segment`] — wall segments, ray–segment intersection, specular
//!   reflection and mirroring.
//! * [`room`] — environments assembled from walls and blockers, including
//!   a constructor for the exact conference room of Fig. 4.
//! * [`raytrace`] — the image (mirror-source) method that enumerates every
//!   unobstructed propagation path between two points with up to two wall
//!   bounces, yielding path length, departure/arrival azimuths and the
//!   cumulative reflection loss.
//!
//! All geometry is planar: the paper measures azimuthal beam patterns and
//! places every device at comparable height, so the third dimension adds
//! nothing the evaluation needs.

pub mod angle;
pub mod material;
pub mod raytrace;
pub mod room;
pub mod segment;
pub mod vec2;

pub use angle::{arc, full_circle, Angle};
pub use material::Material;
pub use raytrace::{
    shared_tree, trace_paths, trace_paths_reference, ClearWall, ImageTree, MirrorNode, PathKind,
    PropPath, TraceConfig,
};
pub use room::{ConferenceRoom, Room, Wall, Zone};
pub use segment::Segment;
pub use vec2::{Point, Vec2};
