//! Image-method (mirror-source) ray tracing.
//!
//! At 60 GHz, propagation is quasi-optical: energy travels along the line of
//! sight and along a handful of specular reflections. The paper shows
//! (§4.3) that first-order *and second-order* wall reflections carry enough
//! energy to matter for both range extension (Fig. 20) and interference
//! (Figs. 18, 19, 23). This module enumerates exactly those paths:
//!
//! * order 0 — the line of sight, if unobstructed;
//! * order 1 — one specular bounce off any wall;
//! * order 2 — two bounces off any ordered pair of distinct walls.
//!
//! Each returned [`PropPath`] carries the geometry the PHY layer needs:
//! total length (for Friis loss and delay), the departure azimuth at the
//! transmitter and arrival azimuth at the receiver (for antenna-pattern
//! weighting), and the summed material reflection loss.

use crate::angle::Angle;
use crate::material::Material;
use crate::room::Room;
use crate::segment::GEOM_EPS;
use crate::vec2::{Point, Vec2};
use std::sync::Arc;

/// Skip radius for obstruction tests at path endpoints and bounce points,
/// in metres. Legs legitimately begin/end on reflecting walls; a crossing
/// within 1 mm of a leg endpoint is that same wall, not an obstruction.
const SKIP_NEAR: f64 = 1e-3;

/// Kind of propagation path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathKind {
    /// Direct, unobstructed line of sight.
    LineOfSight,
    /// Specular reflection path with the given bounce count (1 or 2).
    Reflected {
        /// Number of wall bounces.
        order: usize,
    },
}

/// One propagation path from a transmitter to a receiver.
#[derive(Clone, Debug)]
pub struct PropPath {
    /// LoS or reflected.
    pub kind: PathKind,
    /// Total unfolded path length in metres.
    pub length_m: f64,
    /// Azimuth at which the path leaves the transmitter.
    pub departure: Angle,
    /// Azimuth *from which* the path arrives at the receiver (i.e. pointing
    /// from the receiver towards the last bounce or the transmitter). This
    /// is the direction a rotating horn must face to capture the path.
    pub arrival: Angle,
    /// Sum of per-bounce reflection losses, in dB (0 for LoS).
    pub reflection_loss_db: f64,
    /// Path polyline: transmitter, bounce points…, receiver.
    pub vertices: Vec<Point>,
    /// Materials bounced off, in order.
    pub materials: Vec<Material>,
    /// Labels of the walls bounced off, in order.
    pub wall_labels: Vec<String>,
}

impl PropPath {
    /// Reflection order (0 for LoS).
    pub fn order(&self) -> usize {
        match self.kind {
            PathKind::LineOfSight => 0,
            PathKind::Reflected { order } => order,
        }
    }

    /// Propagation delay in seconds (speed of light in air).
    pub fn delay_s(&self) -> f64 {
        self.length_m / 299_792_458.0
    }
}

/// Ray-tracing configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Maximum reflection order to enumerate (0, 1 or 2).
    pub max_order: usize,
    /// Bounces off materials with reflection loss above this are skipped
    /// (absorbers and humans reflect nothing useful).
    pub max_bounce_loss_db: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            max_order: 2,
            max_bounce_loss_db: 20.0,
        }
    }
}

fn make_path(kind: PathKind, vertices: &[Point], bounces: &[(&Material, &str)]) -> PropPath {
    debug_assert!(vertices.len() >= 2);
    let length_m = vertices.windows(2).map(|w| w[0].distance(w[1])).sum();
    let departure = Angle::from_radians((vertices[1] - vertices[0]).angle());
    let n = vertices.len();
    let arrival = Angle::from_radians((vertices[n - 2] - vertices[n - 1]).angle());
    PropPath {
        kind,
        length_m,
        departure,
        arrival,
        reflection_loss_db: bounces.iter().map(|(m, _)| m.reflection_loss_db()).sum(),
        vertices: vertices.to_vec(),
        materials: bounces.iter().map(|(m, _)| **m).collect(),
        wall_labels: bounces.iter().map(|(_, l)| l.to_string()).collect(),
    }
}

/// Check every leg of `vertices` for obstructions.
fn legs_clear(room: &Room, vertices: &[Point]) -> bool {
    vertices.windows(2).all(|w| {
        // Degenerate legs (bounce point coincides with an endpoint, e.g. in
        // a wall corner) invalidate the path.
        w[0].distance(w[1]) > SKIP_NEAR && room.is_clear(w[0], w[1], SKIP_NEAR)
    })
}

/// `Segment::intersect`-exact obstruction sweep for one leg `p → q` over
/// the tree's precomputed wall constants. `tol_t` depends only on the leg
/// (the reference recomputes `r.length()` — a libm `hypot` — per wall), and
/// `tol_u` comes precomputed per wall, so the loop body is pure mul/div
/// arithmetic. Every comparison reproduces the reference expression on the
/// same bits, so the decision matches `Room::is_clear(p, q, SKIP_NEAR)`
/// wall for wall (disabled walls never obstruct and are simply absent).
fn leg_is_clear(walls: &[ClearWall], p: Point, q: Point, r: Vec2, tol_t: f64) -> bool {
    for w in walls {
        let denom = r.cross(w.s);
        if denom.abs() < GEOM_EPS {
            continue;
        }
        let ap = w.a - p;
        let t = ap.cross(w.s) / denom;
        let u = ap.cross(r) / denom;
        if t > tol_t && t < 1.0 - tol_t && u >= -w.tol_u && u <= 1.0 + w.tol_u {
            let x = p + r * t;
            if x.distance(p) > SKIP_NEAR && x.distance(q) > SKIP_NEAR {
                return false;
            }
        }
    }
    true
}

/// [`legs_clear`] over the precomputed wall constants: the degenerate-leg
/// check and the obstruction tolerance share one `r.length()` per leg
/// (`Point::distance` is `(q − p).length()`, the exact same expression).
fn legs_clear_fast(walls: &[ClearWall], vertices: &[Point]) -> bool {
    vertices.windows(2).all(|w| {
        let r = w[1] - w[0];
        let rl = r.length();
        rl > SKIP_NEAR && leg_is_clear(walls, w[0], w[1], r, GEOM_EPS / rl.max(GEOM_EPS))
    })
}

/// One mirror surface in the shared image tree: a reflective wall's anchor
/// point and unit direction, precomputed once per geometry generation so
/// per-pair tracing does not re-filter walls or re-normalize directions.
///
/// The stored `a`/`d` are bit-copies of what the reference enumeration
/// computes per pair (`w.seg.a` and `w.seg.direction()`), so mirroring an
/// endpoint across a node performs the identical float operations.
#[derive(Clone, Copy, Debug)]
pub struct MirrorNode {
    /// Index of the wall in `room.walls()`.
    pub wall: usize,
    /// Wall anchor point (`seg.a`).
    pub a: Point,
    /// Wall unit direction (`seg.direction()`).
    pub d: Vec2,
}

/// One enabled wall's obstruction-test constants, precomputed once per
/// geometry generation. `s` is the raw extent `seg.b − seg.a` (exactly what
/// `Segment::intersect` derives per call) and `tol_u` its length tolerance
/// `GEOM_EPS / s.length().max(GEOM_EPS)` — the only wall-dependent `hypot`
/// in the obstruction test. Covers **all** enabled walls (not just the
/// reflective ones), in `room.walls()` order, so a sweep over this array
/// is decision-identical to `Room::is_clear`.
#[derive(Clone, Copy, Debug)]
pub struct ClearWall {
    /// Wall anchor (`seg.a`).
    pub a: Point,
    /// Raw extent `seg.b − seg.a` (not normalized).
    pub s: Vec2,
    /// `GEOM_EPS / s.length().max(GEOM_EPS)`, the `u`-parameter tolerance.
    pub tol_u: f64,
}

/// Per-room mirror-image expansion, computed once per geometry generation
/// and shared across all device pairs.
///
/// First-order images are one mirror application per node; second-order
/// images are every ordered pair of distinct nodes, walked in the same
/// nested order as the reference enumeration. Since images depend on the
/// transmitter position, the tree stores the mirror *surfaces* (not the
/// images themselves); what it saves per pair is the wall filtering, the
/// direction normalizations (one sqrt per wall per order per pair in the
/// reference) and the reflective-wall allocation.
#[derive(Clone, Debug)]
pub struct ImageTree {
    generation: u64,
    loss_bits: u64,
    /// Reflective walls in `room.walls()` order (the reference filter order).
    pub nodes: Vec<MirrorNode>,
    /// Obstruction-test constants for every *enabled* wall, in
    /// `room.walls()` order — the SoA side of [`ClearWall`].
    pub clear: Vec<ClearWall>,
}

impl ImageTree {
    /// Build the expansion for `room` under `cfg`'s bounce-loss cap.
    pub fn build(room: &Room, cfg: &TraceConfig) -> ImageTree {
        let nodes = room
            .walls()
            .iter()
            .enumerate()
            .filter(|(_, w)| w.enabled && w.material.reflection_loss_db() <= cfg.max_bounce_loss_db)
            .map(|(i, w)| MirrorNode {
                wall: i,
                a: w.seg.a,
                d: w.seg.direction(),
            })
            .collect();
        let clear = room
            .walls()
            .iter()
            .filter(|w| w.enabled)
            .map(|w| {
                let s = w.seg.b - w.seg.a;
                ClearWall {
                    a: w.seg.a,
                    s,
                    tol_u: GEOM_EPS / s.length().max(GEOM_EPS),
                }
            })
            .collect();
        ImageTree {
            generation: room.generation(),
            loss_bits: cfg.max_bounce_loss_db.to_bits(),
            nodes,
            clear,
        }
    }

    /// Number of mirror surfaces (first-order branching factor).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// The room's shared image tree for `cfg`, rebuilt only when the geometry
/// generation or the bounce-loss cap changed since the last call.
pub fn shared_tree(room: &Room, cfg: &TraceConfig) -> Arc<ImageTree> {
    let mut slot = room.tree_slot().borrow_mut();
    if let Some(t) = slot.as_ref() {
        if t.generation == room.generation() && t.loss_bits == cfg.max_bounce_loss_db.to_bits() {
            return Arc::clone(t);
        }
    }
    let t = Arc::new(ImageTree::build(room, cfg));
    *slot = Some(Arc::clone(&t));
    t
}

/// Enumerate all unobstructed propagation paths from `tx` to `rx` in `room`,
/// up to `cfg.max_order` specular reflections. Paths are returned sorted by
/// increasing length (the LoS first when present).
///
/// Internally walks the room's cached [`ImageTree`], shared across all
/// device pairs; output is byte-identical to [`trace_paths_reference`]
/// (proven by `tests/image_tree_equivalence.rs`).
pub fn trace_paths(room: &Room, tx: Point, rx: Point, cfg: &TraceConfig) -> Vec<PropPath> {
    let mut paths = Vec::new();
    if tx.distance(rx) <= GEOM_EPS {
        return paths;
    }

    let tree = shared_tree(room, cfg);
    let walls = room.walls();

    // Order 0: line of sight. No degenerate-leg guard here — the reference
    // applies only `is_clear` to the LoS leg (the pair-coincidence test
    // above already ran), so the sweep is called directly.
    let r = rx - tx;
    if leg_is_clear(&tree.clear, tx, rx, r, GEOM_EPS / r.length().max(GEOM_EPS)) {
        paths.push(make_path(PathKind::LineOfSight, &[tx, rx], &[]));
    }

    // Order 1: mirror tx across each node; the bounce point is where the
    // image–rx segment crosses the wall. Candidate vertices live on the
    // stack; only accepted paths allocate (inside `make_path`).
    if cfg.max_order >= 1 {
        for node in &tree.nodes {
            let w = &walls[node.wall];
            let image = tx.mirror_across(node.a, node.d);
            if image.distance(rx) <= GEOM_EPS {
                continue;
            }
            let Some((_, bounce)) = w.seg.intersect(image, rx) else {
                continue;
            };
            let verts = [tx, bounce, rx];
            if legs_clear_fast(&tree.clear, &verts) {
                paths.push(make_path(
                    PathKind::Reflected { order: 1 },
                    &verts,
                    &[(&w.material, w.label.as_str())],
                ));
            }
        }
    }

    // Order 2: mirror tx across node 1, then that image across node 2;
    // unfold from the receiver back through both walls.
    if cfg.max_order >= 2 {
        for (i, n1) in tree.nodes.iter().enumerate() {
            let w1 = &walls[n1.wall];
            let image1 = tx.mirror_across(n1.a, n1.d);
            for (j, n2) in tree.nodes.iter().enumerate() {
                if i == j {
                    continue;
                }
                let w2 = &walls[n2.wall];
                let image2 = image1.mirror_across(n2.a, n2.d);
                if image2.distance(rx) <= GEOM_EPS {
                    continue;
                }
                let Some((_, b2)) = w2.seg.intersect(image2, rx) else {
                    continue;
                };
                if image1.distance(b2) <= GEOM_EPS {
                    continue;
                }
                let Some((_, b1)) = w1.seg.intersect(image1, b2) else {
                    continue;
                };
                let verts = [tx, b1, b2, rx];
                if legs_clear_fast(&tree.clear, &verts) {
                    paths.push(make_path(
                        PathKind::Reflected { order: 2 },
                        &verts,
                        &[
                            (&w1.material, w1.label.as_str()),
                            (&w2.material, w2.label.as_str()),
                        ],
                    ));
                }
            }
        }
    }

    paths.sort_by(|a, b| a.length_m.partial_cmp(&b.length_m).expect("finite lengths"));
    paths
}

/// The original per-pair enumeration, kept as the differential-test oracle:
/// it re-derives the reflective wall set and every mirror direction for
/// each (tx, rx) pair. [`trace_paths`] must match it bit for bit.
pub fn trace_paths_reference(
    room: &Room,
    tx: Point,
    rx: Point,
    cfg: &TraceConfig,
) -> Vec<PropPath> {
    let mut paths = Vec::new();
    if tx.distance(rx) <= GEOM_EPS {
        return paths;
    }

    // Order 0: line of sight.
    if room.is_clear(tx, rx, SKIP_NEAR) {
        paths.push(make_path(PathKind::LineOfSight, &[tx, rx], &[]));
    }

    let reflective: Vec<_> = room
        .walls()
        .iter()
        .filter(|w| w.enabled && w.material.reflection_loss_db() <= cfg.max_bounce_loss_db)
        .collect();

    // Order 1: mirror tx across each wall; the bounce point is where the
    // image–rx segment crosses the wall.
    if cfg.max_order >= 1 {
        for w in &reflective {
            let d = w.seg.direction();
            let image = tx.mirror_across(w.seg.a, d);
            if image.distance(rx) <= GEOM_EPS {
                continue;
            }
            let Some((_, bounce)) = w.seg.intersect(image, rx) else {
                continue;
            };
            let verts = [tx, bounce, rx];
            if legs_clear(room, &verts) {
                paths.push(make_path(
                    PathKind::Reflected { order: 1 },
                    &verts,
                    &[(&w.material, w.label.as_str())],
                ));
            }
        }
    }

    // Order 2: mirror tx across w1, then that image across w2; unfold from
    // the receiver back through both walls.
    if cfg.max_order >= 2 {
        for (i, w1) in reflective.iter().enumerate() {
            let d1 = w1.seg.direction();
            let image1 = tx.mirror_across(w1.seg.a, d1);
            for (j, w2) in reflective.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d2 = w2.seg.direction();
                let image2 = image1.mirror_across(w2.seg.a, d2);
                if image2.distance(rx) <= GEOM_EPS {
                    continue;
                }
                let Some((_, b2)) = w2.seg.intersect(image2, rx) else {
                    continue;
                };
                if image1.distance(b2) <= GEOM_EPS {
                    continue;
                }
                let Some((_, b1)) = w1.seg.intersect(image1, b2) else {
                    continue;
                };
                let verts = [tx, b1, b2, rx];
                if legs_clear(room, &verts) {
                    paths.push(make_path(
                        PathKind::Reflected { order: 2 },
                        &verts,
                        &[
                            (&w1.material, w1.label.as_str()),
                            (&w2.material, w2.label.as_str()),
                        ],
                    ));
                }
            }
        }
    }

    paths.sort_by(|a, b| a.length_m.partial_cmp(&b.length_m).expect("finite lengths"));
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::room::{Room, Wall};
    use crate::segment::Segment;
    use crate::vec2::Vec2;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn mirror_room() -> Room {
        // A single metal wall along the x-axis from (0,0) to (10,0).
        Room::open_space().with_wall(Wall::new(
            Segment::new(p(0.0, 0.0), p(10.0, 0.0)),
            Material::Metal,
            "mirror",
        ))
    }

    #[test]
    fn open_space_has_only_los() {
        let paths = trace_paths(
            &Room::open_space(),
            p(0.0, 0.0),
            p(5.0, 0.0),
            &TraceConfig::default(),
        );
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].kind, PathKind::LineOfSight);
        assert!((paths[0].length_m - 5.0).abs() < 1e-12);
        assert!((paths[0].departure.degrees() - 0.0).abs() < 1e-9);
        assert!((paths[0].arrival.degrees().abs() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn single_mirror_geometry() {
        // TX at (2,1), RX at (6,1): LoS of length 4 plus one bounce at (4,0)
        // with total length 2·√(2²+1²) = 2√5.
        let paths = trace_paths(
            &mirror_room(),
            p(2.0, 1.0),
            p(6.0, 1.0),
            &TraceConfig::default(),
        );
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].kind, PathKind::LineOfSight);
        let refl = &paths[1];
        assert_eq!(refl.kind, PathKind::Reflected { order: 1 });
        assert!((refl.length_m - 2.0 * 5f64.sqrt()).abs() < 1e-9);
        let bounce = refl.vertices[1];
        assert!((bounce.x - 4.0).abs() < 1e-9 && bounce.y.abs() < 1e-9);
        // Specular: angle of incidence equals angle of reflection.
        let in_dir = (bounce - refl.vertices[0]).normalized();
        let out_dir = (refl.vertices[2] - bounce).normalized();
        let n = Vec2::new(0.0, 1.0);
        assert!((in_dir.dot(n) + out_dir.dot(n)).abs() < 1e-9);
        assert!((refl.reflection_loss_db - Material::Metal.reflection_loss_db()).abs() < 1e-12);
    }

    #[test]
    fn bounce_point_must_lie_on_wall_segment() {
        // Wall only spans x ∈ [0,10]; a would-be bounce at x = 15 is invalid.
        let paths = trace_paths(
            &mirror_room(),
            p(14.0, 1.0),
            p(16.0, 1.0),
            &TraceConfig::default(),
        );
        assert_eq!(paths.len(), 1, "only LoS should remain");
        assert_eq!(paths[0].kind, PathKind::LineOfSight);
    }

    #[test]
    fn blocked_los_leaves_reflection() {
        let mut room = mirror_room();
        // Absorbing screen between TX and RX, above the mirror, blocking LoS
        // but not the floor bounce.
        room.add_obstacle(
            Segment::new(p(4.0, 0.5), p(4.0, 2.0)),
            Material::Absorber,
            "screen",
        );
        let paths = trace_paths(&room, p(2.0, 1.0), p(6.0, 1.0), &TraceConfig::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].kind, PathKind::Reflected { order: 1 });
    }

    #[test]
    fn disabled_mirror_produces_no_bounce() {
        let mut room = mirror_room();
        let idx = room.find_wall("mirror").expect("mirror wall");
        room.set_wall_enabled(idx, false);
        let paths = trace_paths(&room, p(2.0, 1.0), p(6.0, 1.0), &TraceConfig::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].kind, PathKind::LineOfSight);
        room.set_wall_enabled(idx, true);
        let paths = trace_paths(&room, p(2.0, 1.0), p(6.0, 1.0), &TraceConfig::default());
        assert_eq!(paths.len(), 2, "re-enabled mirror reflects again");
    }

    #[test]
    fn absorber_produces_no_bounce() {
        let room = Room::open_space().with_wall(Wall::new(
            Segment::new(p(0.0, 0.0), p(10.0, 0.0)),
            Material::Absorber,
            "absorber floor",
        ));
        let paths = trace_paths(&room, p(2.0, 1.0), p(6.0, 1.0), &TraceConfig::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].kind, PathKind::LineOfSight);
    }

    #[test]
    fn parallel_mirrors_give_second_order() {
        // Metal walls at y=0 and y=3; TX and RX between them. Expect LoS,
        // two order-1 and at least two order-2 paths (floor→ceiling and
        // ceiling→floor).
        let room = Room::open_space()
            .with_wall(Wall::new(
                Segment::new(p(-50.0, 0.0), p(50.0, 0.0)),
                Material::Metal,
                "floor",
            ))
            .with_wall(Wall::new(
                Segment::new(p(-50.0, 3.0), p(50.0, 3.0)),
                Material::Metal,
                "ceiling",
            ));
        let paths = trace_paths(&room, p(0.0, 1.0), p(6.0, 1.0), &TraceConfig::default());
        let by_order = |o: usize| paths.iter().filter(|p| p.order() == o).count();
        assert_eq!(by_order(0), 1);
        assert_eq!(by_order(1), 2);
        assert_eq!(by_order(2), 2);
        // Order-2 paths accumulate two bounces of loss.
        for path in paths.iter().filter(|p| p.order() == 2) {
            assert!(
                (path.reflection_loss_db - 2.0 * Material::Metal.reflection_loss_db()).abs()
                    < 1e-12
            );
            assert_eq!(path.materials.len(), 2);
            assert_eq!(path.vertices.len(), 4);
        }
    }

    #[test]
    fn order_2_specular_at_both_bounces() {
        let room = Room::open_space()
            .with_wall(Wall::new(
                Segment::new(p(-50.0, 0.0), p(50.0, 0.0)),
                Material::Metal,
                "floor",
            ))
            .with_wall(Wall::new(
                Segment::new(p(-50.0, 3.0), p(50.0, 3.0)),
                Material::Metal,
                "ceiling",
            ));
        let paths = trace_paths(&room, p(0.0, 1.0), p(6.0, 1.0), &TraceConfig::default());
        for path in paths.iter().filter(|p| p.order() == 2) {
            for k in 1..=2 {
                let prev = path.vertices[k - 1];
                let here = path.vertices[k];
                let next = path.vertices[k + 1];
                let n = Vec2::new(0.0, 1.0); // both walls horizontal
                let i = (here - prev).normalized();
                let o = (next - here).normalized();
                assert!((i.dot(n) + o.dot(n)).abs() < 1e-9, "non-specular bounce");
            }
        }
    }

    #[test]
    fn max_order_caps_enumeration() {
        let room = Room::rectangular(
            8.0,
            4.0,
            (
                Material::Metal,
                Material::Metal,
                Material::Metal,
                Material::Metal,
            ),
        );
        let tx = p(1.0, 2.0);
        let rx = p(7.0, 2.0);
        let n0 = trace_paths(
            &room,
            tx,
            rx,
            &TraceConfig {
                max_order: 0,
                ..Default::default()
            },
        )
        .len();
        let n1 = trace_paths(
            &room,
            tx,
            rx,
            &TraceConfig {
                max_order: 1,
                ..Default::default()
            },
        )
        .len();
        let n2 = trace_paths(
            &room,
            tx,
            rx,
            &TraceConfig {
                max_order: 2,
                ..Default::default()
            },
        )
        .len();
        assert_eq!(n0, 1);
        assert!(n1 > n0);
        assert!(n2 > n1);
    }

    #[test]
    fn paths_sorted_by_length_and_los_is_shortest() {
        let room = Room::rectangular(
            9.0,
            3.25,
            (
                Material::Wood,
                Material::Glass,
                Material::Brick,
                Material::Brick,
            ),
        );
        let paths = trace_paths(&room, p(0.5, 1.3), p(8.5, 1.3), &TraceConfig::default());
        assert!(paths.len() >= 3);
        for w in paths.windows(2) {
            assert!(w[0].length_m <= w[1].length_m);
        }
        assert_eq!(paths[0].kind, PathKind::LineOfSight);
    }

    #[test]
    fn arrival_points_back_along_last_leg() {
        let paths = trace_paths(
            &mirror_room(),
            p(2.0, 1.0),
            p(6.0, 1.0),
            &TraceConfig::default(),
        );
        let refl = paths.iter().find(|p| p.order() == 1).expect("bounce path");
        // Last leg rises from the floor bounce to RX, so the arrival azimuth
        // (looking back from RX) must point down-left: between -90° and -180°.
        let deg = refl.arrival.degrees();
        assert!((-180.0..=-90.0).contains(&deg), "arrival {deg}");
    }

    #[test]
    fn delay_matches_length() {
        let paths = trace_paths(
            &Room::open_space(),
            p(0.0, 0.0),
            p(3.0, 0.0),
            &TraceConfig::default(),
        );
        let d = paths[0].delay_s();
        assert!((d - 3.0 / 299_792_458.0).abs() < 1e-18);
    }
}
