//! Line segments: the building block of walls, blockers and reflectors.

use crate::vec2::{Point, Vec2};

/// Tolerance for "on the segment" decisions, in metres. Well below any
/// physical dimension in the scenarios (devices are centimetres apart at
/// minimum) but far above f64 noise.
pub const GEOM_EPS: f64 = 1e-9;

/// A directed line segment from `a` to `b`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Construct from endpoints. Panics in debug builds on degenerate
    /// (zero-length) segments.
    pub fn new(a: Point, b: Point) -> Segment {
        debug_assert!(a.distance(b) > GEOM_EPS, "degenerate segment");
        Segment { a, b }
    }

    /// Segment length.
    pub fn length(self) -> f64 {
        self.a.distance(self.b)
    }

    /// Direction unit vector from `a` to `b`.
    pub fn direction(self) -> Vec2 {
        (self.b - self.a).normalized()
    }

    /// A unit normal (rotated +90° from the direction). The sign is
    /// irrelevant for specular reflection, which is symmetric in `n`.
    pub fn normal(self) -> Vec2 {
        self.direction().perp()
    }

    /// Midpoint.
    pub fn midpoint(self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Point at parameter `t` ∈ [0, 1] along the segment.
    pub fn at(self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Intersection of the open segment `p → q` with this segment.
    ///
    /// Returns `(t, point)` where `t` ∈ (0, 1) parameterizes `p → q`,
    /// or `None` if they don't cross. Endpoint grazes within [`GEOM_EPS`]
    /// are treated as misses so a ray reflecting *off* a wall is not also
    /// "blocked" by the same wall.
    pub fn intersect(self, p: Point, q: Point) -> Option<(f64, Point)> {
        let r = q - p;
        let s = self.b - self.a;
        let denom = r.cross(s);
        if denom.abs() < GEOM_EPS {
            return None; // parallel or collinear: no transversal crossing
        }
        let ap = self.a - p;
        let t = ap.cross(s) / denom; // along p->q
        let u = ap.cross(r) / denom; // along self
        let tol_t = GEOM_EPS / r.length().max(GEOM_EPS);
        let tol_u = GEOM_EPS / s.length().max(GEOM_EPS);
        if t > tol_t && t < 1.0 - tol_t && u >= -tol_u && u <= 1.0 + tol_u {
            Some((t, p + r * t))
        } else {
            None
        }
    }

    /// True if the open segment `p → q` crosses this segment, ignoring
    /// crossings within `skip_near` metres of either `p` or `q`. Used for
    /// obstruction tests where the path legitimately starts or ends on a
    /// reflecting wall.
    pub fn obstructs(self, p: Point, q: Point, skip_near: f64) -> bool {
        match self.intersect(p, q) {
            None => false,
            Some((_, x)) => x.distance(p) > skip_near && x.distance(q) > skip_near,
        }
    }

    /// Shortest distance from a point to this segment.
    pub fn distance_to(self, p: Point) -> f64 {
        let ab = self.b - self.a;
        let t = ((p - self.a).dot(ab) / ab.length_sq()).clamp(0.0, 1.0);
        p.distance(self.at(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn basic_properties() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert!((s.length() - 5.0).abs() < 1e-12);
        assert_eq!(s.midpoint(), Point::new(1.5, 2.0));
        let d = s.direction();
        assert!((d.x - 0.6).abs() < 1e-12 && (d.y - 0.8).abs() < 1e-12);
        assert!(s.normal().dot(d).abs() < 1e-12);
    }

    #[test]
    fn crossing_intersection() {
        let wall = seg(0.0, -1.0, 0.0, 1.0);
        let hit = wall.intersect(Point::new(-1.0, 0.0), Point::new(1.0, 0.0));
        let (t, p) = hit.expect("should cross");
        assert!((t - 0.5).abs() < 1e-12);
        assert!(p.distance(Point::new(0.0, 0.0)) < 1e-12);
    }

    #[test]
    fn parallel_misses() {
        let wall = seg(0.0, 0.0, 10.0, 0.0);
        assert!(wall
            .intersect(Point::new(0.0, 1.0), Point::new(10.0, 1.0))
            .is_none());
    }

    #[test]
    fn beyond_segment_misses() {
        let wall = seg(0.0, -1.0, 0.0, 1.0);
        // Crosses the wall's infinite line but above the segment.
        assert!(wall
            .intersect(Point::new(-1.0, 5.0), Point::new(1.0, 5.0))
            .is_none());
    }

    #[test]
    fn endpoint_graze_is_a_miss() {
        let wall = seg(0.0, -1.0, 0.0, 1.0);
        // Path *starting* exactly on the wall must not be blocked by it.
        assert!(wall
            .intersect(Point::new(0.0, 0.0), Point::new(5.0, 0.0))
            .is_none());
    }

    #[test]
    fn obstructs_skips_near_endpoints() {
        let wall = seg(0.0, -1.0, 0.0, 1.0);
        let p = Point::new(-0.001, 0.0);
        let q = Point::new(5.0, 0.0);
        assert!(wall.obstructs(p, q, 0.0));
        // With a skip radius bigger than the crossing distance it's ignored.
        assert!(!wall.obstructs(p, q, 0.01));
    }

    #[test]
    fn distance_to_point() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert!((s.distance_to(Point::new(5.0, 3.0)) - 3.0).abs() < 1e-12);
        assert!((s.distance_to(Point::new(-4.0, 3.0)) - 5.0).abs() < 1e-12); // clamps to endpoint
    }

    #[test]
    fn intersection_point_lies_on_both() {
        let w = seg(2.0, 0.0, 2.0, 10.0);
        let (_, p) = w
            .intersect(Point::new(0.0, 1.0), Point::new(4.0, 9.0))
            .expect("crosses");
        assert!(w.distance_to(p) < 1e-9);
    }
}
