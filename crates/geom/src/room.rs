//! Environments assembled from material walls.
//!
//! A [`Room`] is a bag of [`Wall`]s (wall = segment + material + label).
//! Walls both *block* paths that would penetrate them and *reflect* paths
//! that bounce off them; purely absorptive obstacles (humans, the shielding
//! elements of Fig. 7) are walls too — the ray tracer simply never finds a
//! useful bounce off them because of their reflection loss.
//!
//! [`ConferenceRoom`] reconstructs the exact measurement room of the paper's
//! Fig. 4: 9 m × 3.25 m, wood on the receiver-side wall, brick along the
//! top, a glass window front along the bottom, and the six probe locations
//! A–F.

use crate::material::Material;
use crate::raytrace::ImageTree;
use crate::segment::Segment;
use crate::vec2::Point;
use std::cell::RefCell;
use std::sync::Arc;

/// A wall: a segment of a given material with a diagnostic label.
#[derive(Clone, Debug)]
pub struct Wall {
    /// The wall's footprint in the plane.
    pub seg: Segment,
    /// Surface material (determines reflection/penetration loss).
    pub material: Material,
    /// Human-readable label used in reports ("window", "wood wall", …).
    pub label: String,
    /// Disabled walls neither block nor reflect — a scenario parking a
    /// blocker "off stage" without changing wall indices.
    pub enabled: bool,
}

impl Wall {
    /// Construct a wall (enabled).
    pub fn new(seg: Segment, material: Material, label: impl Into<String>) -> Wall {
        Wall {
            seg,
            material,
            label: label.into(),
            enabled: true,
        }
    }
}

/// An axis-aligned rectangular region declared opaque: every wall on its
/// boundary fully blocks propagation, so no path connects a point inside
/// the zone to a point outside it. Zones are an opt-in contract used to
/// scope cache invalidation after wall mutations — see [`Room::add_zone`].
#[derive(Clone, Copy, Debug)]
pub struct Zone {
    /// Lower-left corner (inclusive).
    pub min: Point,
    /// Upper-right corner (inclusive).
    pub max: Point,
}

impl Zone {
    /// True if `p` lies inside the zone (boundary inclusive, so a wall on
    /// the shared border of two zones belongs to both).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
}

/// An environment: a set of walls (possibly none — outdoor measurements).
#[derive(Clone, Debug, Default)]
pub struct Room {
    walls: Vec<Wall>,
    /// Bumped on every wall mutation; keys the shared image tree and lets
    /// external caches detect geometry changes cheaply.
    generation: u64,
    zones: Vec<Zone>,
    /// Lazily built mirror-image expansion shared across all device pairs.
    /// Clones share the same (immutable) tree until either side mutates.
    tree: RefCell<Option<Arc<ImageTree>>>,
}

impl Room {
    /// An open space with no walls (the paper's outdoor beam-pattern range).
    pub fn open_space() -> Room {
        Room::default()
    }

    /// Add a wall; returns `self` for builder-style chaining.
    pub fn with_wall(mut self, wall: Wall) -> Room {
        self.add_wall(wall);
        self
    }

    /// Add a wall in place; returns its stable index (walls are never
    /// removed, so indices stay valid for the room's lifetime).
    pub fn add_wall(&mut self, wall: Wall) -> usize {
        self.walls.push(wall);
        self.generation += 1;
        self.walls.len() - 1
    }

    /// Convenience: add an absorbing obstacle (shielding element, blockage).
    /// Returns the wall index for later mutation.
    pub fn add_obstacle(
        &mut self,
        seg: Segment,
        material: Material,
        label: impl Into<String>,
    ) -> usize {
        self.add_wall(Wall::new(seg, material, label))
    }

    /// All walls (including disabled ones; clearance checks skip those).
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// Index of the first wall with this label, if any.
    pub fn find_wall(&self, label: &str) -> Option<usize> {
        self.walls.iter().position(|w| w.label == label)
    }

    /// Move/reshape a wall in place (scenario mutation). Callers owning a
    /// link-gain cache must invalidate it after this.
    pub fn set_wall_segment(&mut self, idx: usize, seg: Segment) {
        self.walls[idx].seg = seg;
        self.generation += 1;
    }

    /// Enable or disable a wall in place (scenario mutation). Callers owning
    /// a link-gain cache must invalidate it after this.
    pub fn set_wall_enabled(&mut self, idx: usize, enabled: bool) {
        self.walls[idx].enabled = enabled;
        self.generation += 1;
    }

    /// Geometry generation: bumped on every wall addition or mutation.
    /// Zone declarations do not count — they never change propagation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Declare an axis-aligned opaque zone and return its index.
    ///
    /// Contract (caller-asserted, not checked): every boundary of the zone
    /// is covered by walls that fully block propagation, so no path can
    /// connect the inside of the zone to the outside. Under that contract
    /// a wall mutation inside one zone cannot change any path whose
    /// endpoints both lie outside the affected zones, which lets callers
    /// scope cache invalidation instead of flushing every pair.
    pub fn add_zone(&mut self, min: Point, max: Point) -> usize {
        assert!(min.x <= max.x && min.y <= max.y, "inverted zone corners");
        self.zones.push(Zone { min, max });
        self.zones.len() - 1
    }

    /// All declared opaque zones.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Index of the first zone containing `p`, if any.
    pub fn zone_of(&self, p: Point) -> Option<usize> {
        self.zones.iter().position(|z| z.contains(p))
    }

    /// Indices of every zone containing the whole segment (both endpoints;
    /// a partition wall on the border of two zones belongs to both). Used
    /// to find which zones a wall mutation can affect.
    pub fn zones_of_segment(&self, seg: Segment) -> Vec<usize> {
        self.zones
            .iter()
            .enumerate()
            .filter(|(_, z)| z.contains(seg.a) && z.contains(seg.b))
            .map(|(i, _)| i)
            .collect()
    }

    /// Internal slot for the cached shared image tree (see `raytrace`).
    pub(crate) fn tree_slot(&self) -> &RefCell<Option<Arc<ImageTree>>> {
        &self.tree
    }

    /// An axis-aligned rectangular room `[0,w] × [0,h]` with per-side
    /// materials `(left, bottom, right, top)`.
    pub fn rectangular(
        w: f64,
        h: f64,
        (left, bottom, right, top): (Material, Material, Material, Material),
    ) -> Room {
        assert!(w > 0.0 && h > 0.0);
        let p = Point::new;
        Room::default()
            .with_wall(Wall::new(
                Segment::new(p(0.0, 0.0), p(0.0, h)),
                left,
                "left wall",
            ))
            .with_wall(Wall::new(
                Segment::new(p(0.0, 0.0), p(w, 0.0)),
                bottom,
                "bottom wall",
            ))
            .with_wall(Wall::new(
                Segment::new(p(w, 0.0), p(w, h)),
                right,
                "right wall",
            ))
            .with_wall(Wall::new(Segment::new(p(0.0, h), p(w, h)), top, "top wall"))
    }

    /// True if the open segment `p → q` is free of wall crossings
    /// (crossings within `skip_near` metres of either endpoint are ignored,
    /// so a leg that starts or ends *on* a reflecting wall is not blocked
    /// by that same wall).
    pub fn is_clear(&self, p: Point, q: Point, skip_near: f64) -> bool {
        self.walls
            .iter()
            .all(|w| !w.enabled || !w.seg.obstructs(p, q, skip_near))
    }

    /// The first wall obstructing `p → q` (closest to `p`), if any.
    pub fn first_obstruction(&self, p: Point, q: Point, skip_near: f64) -> Option<&Wall> {
        self.walls
            .iter()
            .filter(|w| w.enabled)
            .filter_map(|w| {
                w.seg.intersect(p, q).and_then(|(t, x)| {
                    (x.distance(p) > skip_near && x.distance(q) > skip_near).then_some((t, w))
                })
            })
            .min_by(|(t1, _), (t2, _)| t1.partial_cmp(t2).expect("finite parameters"))
            .map(|(_, w)| w)
    }
}

/// The paper's conference room (Fig. 4) with its six probe locations.
///
/// Dimensions and probe spacing follow the figure annotations: the room is
/// 9 m × 3.25 m; probe columns are 1.85 m apart; the two probe rows sit at
/// 1.3 m and 1.3 + 0.65 ≈ 1.95 m from the bottom wall. The material layout
/// follows the figure: the receiver-side (left) wall is wood, the top wall
/// is brick, and the bottom wall is the glass window front the paper's
/// position-F analysis refers to.
#[derive(Clone, Debug)]
pub struct ConferenceRoom {
    /// The room geometry.
    pub room: Room,
    /// Transmitter position (right end of the room).
    pub tx: Point,
    /// Receiver position (left end of the room).
    pub rx: Point,
    /// Probe locations A–F in figure order.
    pub probes: [(char, Point); 6],
}

impl ConferenceRoom {
    /// Room width in metres.
    pub const WIDTH: f64 = 9.0;
    /// Room height in metres.
    pub const HEIGHT: f64 = 3.25;

    /// Build the room.
    pub fn new() -> ConferenceRoom {
        let room = Room::rectangular(
            Self::WIDTH,
            Self::HEIGHT,
            (
                Material::Wood,
                Material::Glass,
                Material::Brick,
                Material::Brick,
            ),
        );
        // Link axis: RX near the left (wood) wall, TX near the right wall,
        // both at the lower row height, matching the figure.
        let rx = Point::new(0.35, 1.3);
        let tx = Point::new(8.65, 1.3);
        // Probe columns at 1.85 m spacing from the left wall; upper row at
        // 1.95 m, lower row at 0.65 m (figure's 1.3 m / 1.6 m annotations
        // measure the row offsets from the link axis).
        let col = |i: f64| 1.85 * i;
        let probes = [
            ('A', Point::new(col(3.0), 1.95)),
            ('B', Point::new(col(2.0), 1.95)),
            ('C', Point::new(col(1.0), 1.95)),
            ('D', Point::new(col(2.0), 0.65)),
            ('E', Point::new(col(3.0), 0.65)),
            ('F', Point::new(col(4.0), 0.65)),
        ];
        ConferenceRoom {
            room,
            tx,
            rx,
            probes,
        }
    }

    /// Probe position by letter.
    pub fn probe(&self, letter: char) -> Point {
        self.probes
            .iter()
            .find(|(c, _)| *c == letter)
            .map(|(_, p)| *p)
            .unwrap_or_else(|| panic!("no probe {letter}"))
    }
}

impl Default for ConferenceRoom {
    fn default() -> Self {
        ConferenceRoom::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_space_is_always_clear() {
        let r = Room::open_space();
        assert!(r.is_clear(Point::new(0.0, 0.0), Point::new(100.0, 50.0), 0.0));
        assert!(r
            .first_obstruction(Point::new(0.0, 0.0), Point::new(1.0, 1.0), 0.0)
            .is_none());
    }

    #[test]
    fn rectangular_room_walls() {
        let r = Room::rectangular(
            4.0,
            3.0,
            (
                Material::Wood,
                Material::Glass,
                Material::Brick,
                Material::Brick,
            ),
        );
        assert_eq!(r.walls().len(), 4);
        // Interior point to interior point: clear.
        assert!(r.is_clear(Point::new(1.0, 1.0), Point::new(3.0, 2.0), 0.0));
        // Interior to exterior: blocked.
        assert!(!r.is_clear(Point::new(1.0, 1.0), Point::new(10.0, 1.0), 0.0));
    }

    #[test]
    fn first_obstruction_picks_closest() {
        let mut r = Room::open_space();
        let p = Point::new;
        r.add_obstacle(
            Segment::new(p(2.0, -1.0), p(2.0, 1.0)),
            Material::Wood,
            "near",
        );
        r.add_obstacle(
            Segment::new(p(5.0, -1.0), p(5.0, 1.0)),
            Material::Brick,
            "far",
        );
        let w = r
            .first_obstruction(p(0.0, 0.0), p(10.0, 0.0), 0.0)
            .expect("blocked");
        assert_eq!(w.label, "near");
    }

    #[test]
    fn skip_near_allows_wall_grazes() {
        let mut r = Room::open_space();
        let p = Point::new;
        r.add_obstacle(
            Segment::new(p(0.0, -1.0), p(0.0, 1.0)),
            Material::Metal,
            "mirror",
        );
        // Leg starting 1 µm from the mirror (i.e. effectively on it).
        assert!(r.is_clear(p(1e-6, 0.0), p(5.0, 0.0), 1e-3));
    }

    #[test]
    fn disabled_wall_neither_blocks_nor_obstructs() {
        let mut r = Room::open_space();
        let p = Point::new;
        let idx = r.add_obstacle(
            Segment::new(p(2.0, -1.0), p(2.0, 1.0)),
            Material::Human,
            "body",
        );
        assert!(!r.is_clear(p(0.0, 0.0), p(4.0, 0.0), 0.0));
        r.set_wall_enabled(idx, false);
        assert!(r.is_clear(p(0.0, 0.0), p(4.0, 0.0), 0.0));
        assert!(r.first_obstruction(p(0.0, 0.0), p(4.0, 0.0), 0.0).is_none());
        r.set_wall_enabled(idx, true);
        assert!(!r.is_clear(p(0.0, 0.0), p(4.0, 0.0), 0.0));
    }

    #[test]
    fn wall_can_be_found_and_moved() {
        let mut r = Room::open_space();
        let p = Point::new;
        let idx = r.add_obstacle(
            Segment::new(p(2.0, -1.0), p(2.0, 1.0)),
            Material::Human,
            "body",
        );
        assert_eq!(r.find_wall("body"), Some(idx));
        assert_eq!(r.find_wall("ghost"), None);
        // Step the blocker sideways out of the link corridor.
        r.set_wall_segment(idx, Segment::new(p(2.0, 5.0), p(2.0, 7.0)));
        assert!(r.is_clear(p(0.0, 0.0), p(4.0, 0.0), 0.0));
        // And back in.
        r.set_wall_segment(idx, Segment::new(p(2.0, -1.0), p(2.0, 1.0)));
        assert!(!r.is_clear(p(0.0, 0.0), p(4.0, 0.0), 0.0));
    }

    #[test]
    fn conference_room_layout() {
        let c = ConferenceRoom::new();
        assert_eq!(c.room.walls().len(), 4);
        // TX and RX are inside and can see each other.
        assert!(c.room.is_clear(c.tx, c.rx, 0.0));
        // All probes are inside the room.
        for (_, p) in c.probes {
            assert!(p.x > 0.0 && p.x < ConferenceRoom::WIDTH);
            assert!(p.y > 0.0 && p.y < ConferenceRoom::HEIGHT);
        }
        // Figure order: A is right of B is right of C.
        assert!(c.probe('A').x > c.probe('B').x && c.probe('B').x > c.probe('C').x);
        // F is the rightmost probe, on the lower row.
        assert!(c.probe('F').x > c.probe('E').x);
        assert!(c.probe('F').y < 1.0);
    }

    #[test]
    fn conference_room_materials() {
        let c = ConferenceRoom::new();
        let mat = |label: &str| {
            c.room
                .walls()
                .iter()
                .find(|w| w.label == label)
                .expect("wall")
                .material
        };
        assert_eq!(mat("left wall"), Material::Wood);
        assert_eq!(mat("bottom wall"), Material::Glass);
        assert_eq!(mat("top wall"), Material::Brick);
        assert_eq!(mat("right wall"), Material::Brick);
    }
}
