//! Planar points and vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector (metres).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Vec2 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
}

/// A 2-D point (metres). Points and vectors are kept distinct so the type
/// system catches "added two positions" mistakes.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Construct from components.
    pub const fn new(x: f64, y: f64) -> Vec2 {
        Vec2 { x, y }
    }

    /// Unit vector at `angle_rad` from the +x axis (counter-clockwise).
    pub fn from_angle(angle_rad: f64) -> Vec2 {
        Vec2 {
            x: angle_rad.cos(),
            y: angle_rad.sin(),
        }
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared length (avoids the sqrt when comparing distances).
    pub fn length_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    pub fn cross(self, rhs: Vec2) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Unit vector in the same direction. Panics in debug on zero length.
    pub fn normalized(self) -> Vec2 {
        let len = self.length();
        debug_assert!(len > 0.0, "normalizing zero vector");
        self / len
    }

    /// Perpendicular vector (rotated +90°).
    pub fn perp(self) -> Vec2 {
        Vec2 {
            x: -self.y,
            y: self.x,
        }
    }

    /// Azimuth of this vector in radians, in (-π, π].
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Reflect this (incident) direction about a surface with unit normal
    /// `n`: `v - 2 (v·n) n`.
    pub fn reflect(self, n: Vec2) -> Vec2 {
        debug_assert!(
            (n.length() - 1.0).abs() < 1e-9,
            "normal must be unit length"
        );
        self - n * (2.0 * self.dot(n))
    }

    /// Rotate counter-clockwise by `rad`.
    pub fn rotated(self, rad: f64) -> Vec2 {
        let (s, c) = rad.sin_cos();
        Vec2 {
            x: self.x * c - self.y * s,
            y: self.x * s + self.y * c,
        }
    }
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Construct from coordinates.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        (other - self).length()
    }

    /// Vector from `self` to `other`.
    pub fn to(self, other: Point) -> Vec2 {
        other - self
    }

    /// Midpoint between two points.
    pub fn midpoint(self, other: Point) -> Point {
        Point {
            x: (self.x + other.x) / 2.0,
            y: (self.y + other.y) / 2.0,
        }
    }

    /// Linear interpolation: `self` at t = 0, `other` at t = 1.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Mirror this point across the infinite line through `a` with unit
    /// direction `d` (the image-source construction).
    pub fn mirror_across(self, a: Point, d: Vec2) -> Point {
        debug_assert!((d.length() - 1.0).abs() < 1e-9);
        let v = self - a;
        let along = d * v.dot(d);
        let across = v - along;
        a + along - across
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    fn add(self, rhs: Vec2) -> Point {
        Point {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}
impl AddAssign<Vec2> for Point {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}
impl Sub<Vec2> for Point {
    type Output = Point;
    fn sub(self, rhs: Vec2) -> Point {
        Point {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}
impl Sub<Point> for Point {
    type Output = Vec2;
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}
impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}
impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}
impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}
impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}
impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2 {
            x: self.x * rhs,
            y: self.y * rhs,
        }
    }
}
impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2 {
            x: self.x / rhs,
            y: self.y / rhs,
        }
    }
}
impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2 {
            x: -self.x,
            y: -self.y,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}
impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-12;

    #[test]
    fn vector_basics() {
        let v = Vec2::new(3.0, 4.0);
        assert!((v.length() - 5.0).abs() < EPS);
        assert!((v.length_sq() - 25.0).abs() < EPS);
        assert!((v.normalized().length() - 1.0).abs() < EPS);
        assert!((v.dot(Vec2::new(1.0, 0.0)) - 3.0).abs() < EPS);
        assert!((v.cross(Vec2::new(1.0, 0.0)) + 4.0).abs() < EPS);
    }

    #[test]
    fn from_angle_and_angle_roundtrip() {
        for deg in [-170, -90, -30, 0, 45, 90, 179] {
            let rad = deg as f64 * PI / 180.0;
            let v = Vec2::from_angle(rad);
            assert!((v.angle() - rad).abs() < 1e-12, "deg {deg}");
            assert!((v.length() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn perp_is_ccw_90() {
        let v = Vec2::new(1.0, 0.0);
        let p = v.perp();
        assert!((p.x - 0.0).abs() < EPS && (p.y - 1.0).abs() < EPS);
        assert!(v.dot(p).abs() < EPS);
    }

    #[test]
    fn reflection_about_vertical_normal() {
        // Ray going down-right reflects off a horizontal floor (normal +y)
        // into up-right.
        let v = Vec2::new(1.0, -1.0);
        let r = v.reflect(Vec2::new(0.0, 1.0));
        assert!((r.x - 1.0).abs() < EPS && (r.y - 1.0).abs() < EPS);
    }

    #[test]
    fn reflection_preserves_length() {
        let v = Vec2::new(2.5, -1.5);
        let n = Vec2::new(0.6, 0.8);
        assert!((v.reflect(n).length() - v.length()).abs() < 1e-12);
    }

    #[test]
    fn rotation() {
        let v = Vec2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!(v.x.abs() < EPS && (v.y - 1.0).abs() < EPS);
    }

    #[test]
    fn point_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance(b) - 5.0).abs() < EPS);
        assert_eq!(a.midpoint(b), Point::new(2.5, 4.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a + (b - a), b);
    }

    #[test]
    fn mirror_across_x_axis() {
        let p = Point::new(3.0, 2.0);
        let m = p.mirror_across(Point::ORIGIN, Vec2::new(1.0, 0.0));
        assert!((m.x - 3.0).abs() < EPS && (m.y + 2.0).abs() < EPS);
    }

    #[test]
    fn mirror_is_involution() {
        let p = Point::new(-1.7, 4.2);
        let a = Point::new(2.0, -3.0);
        let d = Vec2::new(0.6, 0.8);
        let twice = p.mirror_across(a, d).mirror_across(a, d);
        assert!((twice.x - p.x).abs() < 1e-12 && (twice.y - p.y).abs() < 1e-12);
    }
}
