//! Wall and obstacle materials with 60 GHz reflection/penetration behaviour.
//!
//! The paper's conference room (Fig. 4) has brick, glass and wood walls; the
//! reflection-interference setup (Fig. 7) uses a metal reflector, and the
//! side-lobe setup uses absorbing shielding elements. The loss values below
//! follow the 60 GHz indoor measurement literature (Xu/Kukshya/Rappaport
//! JSAC '02 and successors): metal is almost lossless, glass is a strong
//! reflector, brick and wood lose progressively more per bounce, and
//! purpose-built absorbers kill the path.
//!
//! Penetration at 60 GHz is effectively nil for all structural materials —
//! walls block; only reflections propagate energy around a room.

use std::fmt;

/// Surface material of a wall, obstacle or reflector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Material {
    /// Metallic surface (whiteboard, reflector plate): near-perfect mirror.
    Metal,
    /// Window glass: strongly reflective at 60 GHz.
    Glass,
    /// Brick / concrete wall.
    Brick,
    /// Wooden wall or door.
    Wood,
    /// Plasterboard / drywall partition.
    Drywall,
    /// RF absorber (shielding element): terminates the path.
    Absorber,
    /// Human body (blockage experiments): heavy attenuation, no useful
    /// reflection.
    Human,
}

impl Material {
    /// Power lost at one specular reflection, in dB (positive number).
    ///
    /// Values sit at the reflective end of the 60 GHz literature ranges:
    /// the planar model has no floor/ceiling bounces, so wall reflections
    /// also stand in for the vertical multipath a real room adds (the
    /// calibration target is the −2…−8 dB lobe range of Figs. 18/19).
    pub fn reflection_loss_db(self) -> f64 {
        match self {
            Material::Metal => 0.5,
            Material::Glass => 2.5,
            Material::Brick => 4.5,
            Material::Wood => 6.0,
            Material::Drywall => 8.0,
            Material::Absorber => 60.0,
            Material::Human => 25.0,
        }
    }

    /// Power lost when penetrating the material, in dB. At 60 GHz these are
    /// large enough that any wall effectively blocks the path; they are kept
    /// finite so blockage margins can still be reasoned about.
    pub fn penetration_loss_db(self) -> f64 {
        match self {
            Material::Metal => 100.0,
            Material::Glass => 12.0,
            Material::Brick => 60.0,
            Material::Wood => 25.0,
            Material::Drywall => 15.0,
            Material::Absorber => 80.0,
            Material::Human => 30.0,
        }
    }

    /// True if a single penetration makes the path useless for data
    /// (> 20 dB penalty) — the ray tracer drops such paths entirely.
    pub fn blocks(self) -> bool {
        self.penetration_loss_db() > 20.0
    }

    /// All materials, for exhaustive sweeps in tests/ablations.
    pub fn all() -> [Material; 7] {
        [
            Material::Metal,
            Material::Glass,
            Material::Brick,
            Material::Wood,
            Material::Drywall,
            Material::Absorber,
            Material::Human,
        ]
    }
}

impl fmt::Display for Material {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Material::Metal => "metal",
            Material::Glass => "glass",
            Material::Brick => "brick",
            Material::Wood => "wood",
            Material::Drywall => "drywall",
            Material::Absorber => "absorber",
            Material::Human => "human",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metal_reflects_best() {
        for m in Material::all() {
            assert!(
                Material::Metal.reflection_loss_db() <= m.reflection_loss_db(),
                "{m} reflects better than metal"
            );
        }
    }

    #[test]
    fn glass_beats_brick_and_wood() {
        // The paper attributes the strong position-F lobe to the window.
        assert!(Material::Glass.reflection_loss_db() < Material::Brick.reflection_loss_db());
        assert!(Material::Brick.reflection_loss_db() < Material::Wood.reflection_loss_db());
    }

    #[test]
    fn absorber_kills_paths() {
        assert!(Material::Absorber.reflection_loss_db() >= 40.0);
        assert!(Material::Absorber.blocks());
    }

    #[test]
    fn structural_materials_block() {
        for m in [
            Material::Metal,
            Material::Brick,
            Material::Wood,
            Material::Human,
        ] {
            assert!(m.blocks(), "{m} should block LoS");
        }
    }

    #[test]
    fn losses_positive() {
        for m in Material::all() {
            assert!(m.reflection_loss_db() > 0.0);
            assert!(m.penetration_loss_db() > 0.0);
        }
    }
}
