//! Property-based tests for the geometric invariants the ray tracer
//! depends on. If any of these break, reflection figures (18–20) silently
//! produce wrong lobes, so they are pinned here.
//!
//! Std-only: mmwave-geom has no dependencies, so the cases are drawn from
//! a tiny inline SplitMix64 generator with fixed seeds. Failures print the
//! case number, which reproduces the exact inputs.

use mmwave_geom::{
    trace_paths, Angle, Material, PathKind, Point, Room, Segment, TraceConfig, Vec2, Wall,
};

const CASES: u64 = 128;

/// Minimal deterministic generator (SplitMix64) for test-case synthesis.
struct Gen(u64);

impl Gen {
    fn new(case: u64) -> Gen {
        Gen(case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }
    fn coord(&mut self) -> f64 {
        self.f64_in(-50.0, 50.0)
    }
}

/// Specular reflection preserves vector length for any unit normal.
#[test]
fn reflect_preserves_length() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let (vx, vy) = (g.coord(), g.coord());
        if vx.abs() <= 1e-6 && vy.abs() <= 1e-6 {
            continue;
        }
        let ang = g.f64_in(-3.14, 3.14);
        let v = Vec2::new(vx, vy);
        let n = Vec2::from_angle(ang);
        let r = v.reflect(n);
        assert!((r.length() - v.length()).abs() < 1e-9, "case {case}");
        // Reflecting twice about the same normal is the identity.
        let rr = r.reflect(n);
        assert!(
            (rr.x - v.x).abs() < 1e-9 && (rr.y - v.y).abs() < 1e-9,
            "case {case}"
        );
    }
}

/// Mirroring a point across a line is an involution and preserves the
/// distance to the line.
#[test]
fn mirror_involution() {
    for case in 0..CASES {
        let mut g = Gen::new(1_000 + case);
        let p = Point::new(g.coord(), g.coord());
        let a = Point::new(g.coord(), g.coord());
        let d = Vec2::from_angle(g.f64_in(-3.14, 3.14));
        let m = p.mirror_across(a, d);
        let back = m.mirror_across(a, d);
        assert!(back.distance(p) < 1e-8, "case {case}");
    }
}

/// Angle normalization always lands in (-180, 180] and diff is
/// antisymmetric.
#[test]
fn angle_normalization() {
    for case in 0..CASES {
        let mut g = Gen::new(2_000 + case);
        let deg = g.f64_in(-10_000.0, 10_000.0);
        let deg2 = g.f64_in(-10_000.0, 10_000.0);
        let a = Angle::from_degrees(deg);
        assert!(
            a.degrees() > -180.0 - 1e-9 && a.degrees() <= 180.0 + 1e-9,
            "case {case}"
        );
        let b = Angle::from_degrees(deg2);
        let d1 = a.diff(b).radians();
        let d2 = b.diff(a).radians();
        // Antisymmetric except at the ±π boundary where both map to +π.
        if d1.abs() < std::f64::consts::PI - 1e-9 {
            assert!((d1 + d2).abs() < 1e-9, "case {case}");
        }
        assert!(a.distance(b) <= std::f64::consts::PI + 1e-12, "case {case}");
    }
}

/// Segment intersection, when it reports a hit, returns a point on both
/// segments.
#[test]
fn intersection_point_on_both() {
    for case in 0..CASES {
        let mut g = Gen::new(3_000 + case);
        let a = Point::new(g.coord(), g.coord());
        let b = Point::new(g.coord(), g.coord());
        let p = Point::new(g.coord(), g.coord());
        let q = Point::new(g.coord(), g.coord());
        if a.distance(b) <= 1e-3 || p.distance(q) <= 1e-3 {
            continue;
        }
        let seg = Segment::new(a, b);
        if let Some((t, x)) = seg.intersect(p, q) {
            assert!(t > 0.0 && t < 1.0, "case {case}");
            assert!(seg.distance_to(x) < 1e-6, "case {case}");
            // x on segment p->q too.
            let pq = Segment::new(p, q);
            assert!(pq.distance_to(x) < 1e-6, "case {case}");
        }
    }
}

/// In a rectangular metal room every traced path obeys physics:
/// LoS length equals the euclidean distance, reflected paths are longer,
/// every bounce is specular, and losses grow with order.
#[test]
fn traced_paths_are_physical() {
    for case in 0..CASES {
        let mut g = Gen::new(4_000 + case);
        let tx = Point::new(g.f64_in(0.5, 7.5), g.f64_in(0.5, 3.5));
        let rx = Point::new(g.f64_in(0.5, 7.5), g.f64_in(0.5, 3.5));
        if tx.distance(rx) <= 0.2 {
            continue;
        }
        let room = Room::rectangular(
            8.0,
            4.0,
            (
                Material::Metal,
                Material::Metal,
                Material::Metal,
                Material::Metal,
            ),
        );
        let paths = trace_paths(&room, tx, rx, &TraceConfig::default());
        let euclid = tx.distance(rx);
        let mut saw_los = false;
        for path in &paths {
            match path.kind {
                PathKind::LineOfSight => {
                    saw_los = true;
                    assert!((path.length_m - euclid).abs() < 1e-9, "case {case}");
                    assert!(path.reflection_loss_db == 0.0, "case {case}");
                }
                PathKind::Reflected { order } => {
                    assert!(path.length_m > euclid - 1e-9, "case {case}");
                    assert_eq!(path.materials.len(), order, "case {case}");
                    assert!(
                        (path.reflection_loss_db
                            - order as f64 * Material::Metal.reflection_loss_db())
                        .abs()
                            < 1e-9,
                        "case {case}"
                    );
                    // Specularity at every bounce: walls are axis-aligned,
                    // so the incident and outgoing direction components
                    // normal to the wall flip sign.
                    for k in 1..path.vertices.len() - 1 {
                        let prev = path.vertices[k - 1];
                        let here = path.vertices[k];
                        let next = path.vertices[k + 1];
                        let horizontal_wall = here.y.abs() < 1e-6 || (here.y - 4.0).abs() < 1e-6;
                        let n = if horizontal_wall {
                            Vec2::new(0.0, 1.0)
                        } else {
                            Vec2::new(1.0, 0.0)
                        };
                        let i = (here - prev).normalized();
                        let o = (next - here).normalized();
                        assert!(
                            (i.dot(n) + o.dot(n)).abs() < 1e-6,
                            "case {case}: non-specular"
                        );
                    }
                }
            }
        }
        assert!(saw_los, "case {case}: LoS must exist in an empty room");
        // Sorted by length.
        for w in paths.windows(2) {
            assert!(w[0].length_m <= w[1].length_m + 1e-12, "case {case}");
        }
    }
}

/// Obstruction is symmetric: p→q blocked iff q→p blocked.
#[test]
fn clearness_symmetric() {
    for case in 0..CASES {
        let mut g = Gen::new(5_000 + case);
        let room = Room::open_space().with_wall(Wall::new(
            Segment::new(Point::new(4.0, 0.0), Point::new(4.0, 2.0)),
            Material::Brick,
            "divider",
        ));
        let p = Point::new(g.f64_in(0.5, 8.5), g.f64_in(0.5, 2.5));
        let q = Point::new(g.f64_in(0.5, 8.5), g.f64_in(0.5, 2.5));
        if p.distance(q) <= 1e-3 {
            continue;
        }
        assert_eq!(
            room.is_clear(p, q, 1e-6),
            room.is_clear(q, p, 1e-6),
            "case {case}"
        );
    }
}
