//! Property-based tests for the geometric invariants the ray tracer
//! depends on. If any of these break, reflection figures (18–20) silently
//! produce wrong lobes, so they are pinned here with proptest.

use mmwave_geom::{trace_paths, Angle, Material, PathKind, Point, Room, Segment, TraceConfig, Vec2, Wall};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -50.0..50.0f64
}

proptest! {
    /// Specular reflection preserves vector length for any unit normal.
    #[test]
    fn reflect_preserves_length(vx in finite_coord(), vy in finite_coord(), ang in -3.14..3.14f64) {
        prop_assume!(vx.abs() > 1e-6 || vy.abs() > 1e-6);
        let v = Vec2::new(vx, vy);
        let n = Vec2::from_angle(ang);
        let r = v.reflect(n);
        prop_assert!((r.length() - v.length()).abs() < 1e-9);
        // Reflecting twice about the same normal is the identity.
        let rr = r.reflect(n);
        prop_assert!((rr.x - v.x).abs() < 1e-9 && (rr.y - v.y).abs() < 1e-9);
    }

    /// Mirroring a point across a line is an involution and preserves the
    /// distance to the line.
    #[test]
    fn mirror_involution(px in finite_coord(), py in finite_coord(),
                         ax in finite_coord(), ay in finite_coord(),
                         ang in -3.14..3.14f64) {
        let p = Point::new(px, py);
        let a = Point::new(ax, ay);
        let d = Vec2::from_angle(ang);
        let m = p.mirror_across(a, d);
        let back = m.mirror_across(a, d);
        prop_assert!(back.distance(p) < 1e-8);
    }

    /// Angle normalization always lands in (-180, 180] and diff is
    /// antisymmetric.
    #[test]
    fn angle_normalization(deg in -10_000.0..10_000.0f64, deg2 in -10_000.0..10_000.0f64) {
        let a = Angle::from_degrees(deg);
        prop_assert!(a.degrees() > -180.0 - 1e-9 && a.degrees() <= 180.0 + 1e-9);
        let b = Angle::from_degrees(deg2);
        let d1 = a.diff(b).radians();
        let d2 = b.diff(a).radians();
        // Antisymmetric except at the ±π boundary where both map to +π.
        if d1.abs() < std::f64::consts::PI - 1e-9 {
            prop_assert!((d1 + d2).abs() < 1e-9);
        }
        prop_assert!(a.distance(b) <= std::f64::consts::PI + 1e-12);
    }

    /// Segment intersection, when it reports a hit, returns a point on both
    /// segments.
    #[test]
    fn intersection_point_on_both(ax in finite_coord(), ay in finite_coord(),
                                  bx in finite_coord(), by in finite_coord(),
                                  px in finite_coord(), py in finite_coord(),
                                  qx in finite_coord(), qy in finite_coord()) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let p = Point::new(px, py);
        let q = Point::new(qx, qy);
        prop_assume!(a.distance(b) > 1e-3 && p.distance(q) > 1e-3);
        let seg = Segment::new(a, b);
        if let Some((t, x)) = seg.intersect(p, q) {
            prop_assert!(t > 0.0 && t < 1.0);
            prop_assert!(seg.distance_to(x) < 1e-6);
            // x on segment p->q too.
            let pq = Segment::new(p, q);
            prop_assert!(pq.distance_to(x) < 1e-6);
        }
    }

    /// In a rectangular metal room every traced path obeys physics:
    /// LoS length equals the euclidean distance, reflected paths are longer,
    /// every bounce is specular, and losses grow with order.
    #[test]
    fn traced_paths_are_physical(txx in 0.5..7.5f64, txy in 0.5..3.5f64,
                                 rxx in 0.5..7.5f64, rxy in 0.5..3.5f64) {
        let tx = Point::new(txx, txy);
        let rx = Point::new(rxx, rxy);
        prop_assume!(tx.distance(rx) > 0.2);
        let room = Room::rectangular(8.0, 4.0,
            (Material::Metal, Material::Metal, Material::Metal, Material::Metal));
        let paths = trace_paths(&room, tx, rx, &TraceConfig::default());
        let euclid = tx.distance(rx);
        let mut saw_los = false;
        for path in &paths {
            match path.kind {
                PathKind::LineOfSight => {
                    saw_los = true;
                    prop_assert!((path.length_m - euclid).abs() < 1e-9);
                    prop_assert!(path.reflection_loss_db == 0.0);
                }
                PathKind::Reflected { order } => {
                    prop_assert!(path.length_m > euclid - 1e-9);
                    prop_assert_eq!(path.materials.len(), order);
                    prop_assert!((path.reflection_loss_db
                        - order as f64 * Material::Metal.reflection_loss_db()).abs() < 1e-9);
                    // Specularity at every bounce: walls are axis-aligned,
                    // so the incident and outgoing direction components
                    // normal to the wall flip sign.
                    for k in 1..path.vertices.len() - 1 {
                        let prev = path.vertices[k - 1];
                        let here = path.vertices[k];
                        let next = path.vertices[k + 1];
                        let horizontal_wall = here.y.abs() < 1e-6 || (here.y - 4.0).abs() < 1e-6;
                        let n = if horizontal_wall { Vec2::new(0.0, 1.0) } else { Vec2::new(1.0, 0.0) };
                        let i = (here - prev).normalized();
                        let o = (next - here).normalized();
                        prop_assert!((i.dot(n) + o.dot(n)).abs() < 1e-6, "non-specular");
                    }
                }
            }
        }
        prop_assert!(saw_los, "LoS must exist in an empty room");
        // Sorted by length.
        for w in paths.windows(2) {
            prop_assert!(w[0].length_m <= w[1].length_m + 1e-12);
        }
    }

    /// Obstruction is symmetric: p→q blocked iff q→p blocked.
    #[test]
    fn clearness_symmetric(px in 0.5..8.5f64, py in 0.5..2.5f64,
                           qx in 0.5..8.5f64, qy in 0.5..2.5f64) {
        let room = Room::open_space().with_wall(Wall::new(
            Segment::new(Point::new(4.0, 0.0), Point::new(4.0, 2.0)),
            Material::Brick, "divider"));
        let p = Point::new(px, py);
        let q = Point::new(qx, qy);
        prop_assume!(p.distance(q) > 1e-3);
        prop_assert_eq!(room.is_clear(p, q, 1e-6), room.is_clear(q, p, 1e-6));
    }
}
