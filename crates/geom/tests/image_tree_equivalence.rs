//! Differential test: the shared-image-tree tracer must emit byte-identical
//! paths to the per-pair reference enumeration on randomized workloads.
//!
//! `trace_paths` walks a per-room mirror expansion built once per geometry
//! generation; `trace_paths_reference` re-derives the reflective wall set
//! and every mirror direction per (tx, rx) pair. The two share `make_path`,
//! `legs_clear` and the sort, so the only thing that can diverge is the
//! wall set, the walk order, or the floating-point mirror arithmetic. This
//! suite drives both with identical randomized rooms, poses, trace orders
//! and mid-stream wall mutations — and requires every field of every
//! returned path to match to the bit (`f64::to_bits`), mirroring the
//! `queue_equivalence.rs` transcript pattern.

use mmwave_geom::{
    trace_paths, trace_paths_reference, Material, Point, Room, Segment, TraceConfig, Wall,
};
use mmwave_sim::rng::SimRng;

const MATERIALS: [Material; 6] = [
    Material::Metal,
    Material::Wood,
    Material::Glass,
    Material::Brick,
    Material::Absorber,
    Material::Human,
];

fn uniform(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    lo + (hi - lo) * u
}

fn random_point(rng: &mut SimRng) -> Point {
    Point::new(uniform(rng, -2.0, 12.0), uniform(rng, -2.0, 8.0))
}

fn random_wall(rng: &mut SimRng, idx: usize) -> Wall {
    let a = random_point(rng);
    let mut b = random_point(rng);
    while a.distance(b) < 0.1 {
        b = random_point(rng);
    }
    let material = MATERIALS[(rng.next_u64() as usize) % MATERIALS.len()];
    Wall::new(Segment::new(a, b), material, format!("wall-{idx}"))
}

fn random_config(rng: &mut SimRng) -> TraceConfig {
    TraceConfig {
        max_order: (rng.next_u64() % 3) as usize,
        max_bounce_loss_db: [5.0, 16.0, 20.0, 1000.0][(rng.next_u64() as usize) % 4],
    }
}

/// Assert element-wise bit equality of the two tracers for one pair.
fn check_pair(room: &Room, tx: Point, rx: Point, cfg: &TraceConfig, step: usize) {
    let fast = trace_paths(room, tx, rx, cfg);
    let refr = trace_paths_reference(room, tx, rx, cfg);
    assert_eq!(
        fast.len(),
        refr.len(),
        "path count diverges at step {step} (tx {tx}, rx {rx}, cfg {cfg:?})"
    );
    for (k, (f, r)) in fast.iter().zip(&refr).enumerate() {
        let at = format!("step {step}, path {k} (tx {tx}, rx {rx})");
        assert_eq!(f.kind, r.kind, "kind diverges at {at}");
        assert_eq!(
            f.length_m.to_bits(),
            r.length_m.to_bits(),
            "length bits diverge at {at}"
        );
        assert_eq!(
            f.departure.degrees().to_bits(),
            r.departure.degrees().to_bits(),
            "departure bits diverge at {at}"
        );
        assert_eq!(
            f.arrival.degrees().to_bits(),
            r.arrival.degrees().to_bits(),
            "arrival bits diverge at {at}"
        );
        assert_eq!(
            f.reflection_loss_db.to_bits(),
            r.reflection_loss_db.to_bits(),
            "loss bits diverge at {at}"
        );
        assert_eq!(f.vertices.len(), r.vertices.len(), "vertex count at {at}");
        for (fv, rv) in f.vertices.iter().zip(&r.vertices) {
            assert_eq!(fv.x.to_bits(), rv.x.to_bits(), "vertex x bits at {at}");
            assert_eq!(fv.y.to_bits(), rv.y.to_bits(), "vertex y bits at {at}");
        }
        assert_eq!(f.materials, r.materials, "materials diverge at {at}");
        assert_eq!(f.wall_labels, r.wall_labels, "labels diverge at {at}");
    }
}

#[test]
fn randomized_rooms_poses_and_orders_match_reference() {
    for seed in 0..12u64 {
        let mut rng = SimRng::root(0x1A6E_7000 + seed);
        let n_walls = 1 + (rng.next_u64() as usize) % 8;
        let mut room = Room::open_space();
        for i in 0..n_walls {
            room.add_wall(random_wall(&mut rng, i));
        }
        // Many pairs against one room: the shared tree is built once and
        // reused, while the reference re-derives everything — any staleness
        // or ordering difference shows up as a bit mismatch.
        for step in 0..60 {
            let cfg = random_config(&mut rng);
            let tx = random_point(&mut rng);
            let rx = random_point(&mut rng);
            check_pair(&room, tx, rx, &cfg, step);
        }
    }
}

#[test]
fn wall_mutations_between_pairs_rebuild_the_tree() {
    for seed in 0..6u64 {
        let mut rng = SimRng::root(0x1A6E_8000 + seed);
        let mut room = Room::open_space();
        for i in 0..5 {
            room.add_wall(random_wall(&mut rng, i));
        }
        for step in 0..80 {
            match rng.next_u64() % 10 {
                // Toggle a wall (30%): the tree's reflective set changes.
                0..=2 => {
                    let idx = (rng.next_u64() as usize) % room.walls().len();
                    let enabled = rng.next_u64() % 2 == 0;
                    room.set_wall_enabled(idx, enabled);
                }
                // Move a wall (20%): anchors and directions change.
                3..=4 => {
                    let idx = (rng.next_u64() as usize) % room.walls().len();
                    let w = random_wall(&mut rng, idx);
                    room.set_wall_segment(idx, w.seg);
                }
                // Grow the room (10%).
                5 => {
                    let i = room.walls().len();
                    room.add_wall(random_wall(&mut rng, i));
                }
                _ => {}
            }
            let cfg = random_config(&mut rng);
            let tx = random_point(&mut rng);
            let rx = random_point(&mut rng);
            check_pair(&room, tx, rx, &cfg, step);
        }
    }
}

#[test]
fn degenerate_and_on_wall_endpoints_match_reference() {
    let mut room = Room::rectangular(
        9.0,
        3.25,
        (
            Material::Wood,
            Material::Glass,
            Material::Brick,
            Material::Brick,
        ),
    );
    room.add_obstacle(
        Segment::new(Point::new(4.0, 0.5), Point::new(4.0, 2.0)),
        Material::Absorber,
        "screen",
    );
    let cfg = TraceConfig::default();
    let probe = Point::new(2.0, 1.3);
    // Coincident endpoints (both must return no paths).
    check_pair(&room, probe, probe, &cfg, 0);
    // Endpoint exactly on a wall, and within the skip radius of one.
    check_pair(&room, Point::new(0.0, 1.3), Point::new(8.0, 1.6), &cfg, 1);
    check_pair(&room, Point::new(1e-6, 1.3), Point::new(8.0, 1.6), &cfg, 2);
    // Endpoint in a corner.
    check_pair(&room, Point::new(0.01, 0.01), Point::new(8.0, 3.0), &cfg, 3);
    // Symmetric swap.
    check_pair(&room, Point::new(8.0, 1.6), Point::new(0.0, 1.3), &cfg, 4);
}
