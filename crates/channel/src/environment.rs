//! The immutable scene an experiment runs in.

use mmwave_geom::{trace_paths, Point, PropPath, Room, TraceConfig};
use mmwave_phy::propagation::LinkBudget;
use mmwave_sim::rng::SimRng;

/// Room + ray-tracing limits + link budget + per-run atmospheric offset.
///
/// The atmospheric offset models the day-to-day loss spread the paper
/// observes across range experiments (Fig. 13: the abrupt-drop distance
/// varies between 10 and 17 m over different runs "due to, e.g., different
/// atmospheric conditions on different days"). It is a single extra loss
/// applied to every path of the run, drawn once per run seed.
#[derive(Clone, Debug)]
pub struct Environment {
    /// Room geometry.
    pub room: Room,
    /// Ray-tracing configuration (max reflection order, bounce-loss cap).
    pub trace: TraceConfig,
    /// Transmit/receive chain parameters.
    pub budget: LinkBudget,
    /// Extra per-run loss in dB (atmospheric / thermal drift), ≥ 0 typical
    /// but may be slightly negative on a good day.
    pub extra_loss_db: f64,
}

impl Environment {
    /// An environment with no extra loss (nominal day).
    pub fn new(room: Room) -> Environment {
        Environment {
            room,
            trace: TraceConfig::default(),
            budget: LinkBudget::consumer_60ghz(),
            extra_loss_db: 0.0,
        }
    }

    /// Select the operating channel (the D5000 application exposes this;
    /// both devices under test support channel 2 at 60.48 GHz and channel
    /// 3 at 62.64 GHz — §3.1). Affects the carrier frequency used for
    /// path loss.
    pub fn with_channel(mut self, channel: u8) -> Environment {
        self.budget.freq_hz = match channel {
            2 => mmwave_phy::FREQ_CH2_HZ,
            3 => mmwave_phy::FREQ_CH3_HZ,
            other => panic!("devices under test support channels 2 and 3, not {other}"),
        };
        self
    }

    /// Draw the per-run atmospheric offset for run `run_idx` from the
    /// campaign RNG: N(μ = 1.8 dB, σ = 1.6 dB) clamped to [−1, +6] dB.
    /// Calibrated jointly with the link budget so the Fig. 13 drop
    /// distance spans ≈ 11–19 m (the paper: 10–17 m, with a 12–18 m
    /// maximum range quoted in §3.1).
    pub fn with_atmosphere(mut self, rng: &SimRng, run_idx: u64) -> Environment {
        let mut r = rng.stream_n("atmosphere", run_idx);
        self.extra_loss_db = r.normal(1.8, 1.6).clamp(-1.0, 6.0);
        self
    }

    /// All propagation paths between two points.
    pub fn paths(&self, tx: Point, rx: Point) -> Vec<PropPath> {
        trace_paths(&self.room, tx, rx, &self.trace)
    }

    /// Thermal noise floor of the receive chain, in dBm.
    pub fn noise_floor_dbm(&self) -> f64 {
        self.budget.noise_floor_dbm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_geom::Room;

    #[test]
    fn nominal_environment() {
        let env = Environment::new(Room::open_space());
        assert_eq!(env.extra_loss_db, 0.0);
        assert!(env.noise_floor_dbm() < -70.0);
        let paths = env.paths(Point::new(0.0, 0.0), Point::new(5.0, 0.0));
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn atmosphere_varies_per_run_but_is_reproducible() {
        let rng = SimRng::root(1234);
        let a = Environment::new(Room::open_space()).with_atmosphere(&rng, 0);
        let b = Environment::new(Room::open_space()).with_atmosphere(&rng, 1);
        let a2 = Environment::new(Room::open_space()).with_atmosphere(&rng, 0);
        assert_ne!(a.extra_loss_db, b.extra_loss_db);
        assert_eq!(a.extra_loss_db, a2.extra_loss_db);
        assert!((-1.0..=6.0).contains(&a.extra_loss_db));
    }

    #[test]
    fn channel_selection_moves_the_carrier() {
        let ch2 = Environment::new(Room::open_space()).with_channel(2);
        let ch3 = Environment::new(Room::open_space()).with_channel(3);
        assert!(ch3.budget.freq_hz > ch2.budget.freq_hz);
        // Channel 3 loses ≈ 0.3 dB more over the same distance.
        let d = 5.0;
        let l2 = mmwave_phy::fspl_db(ch2.budget.freq_hz, d);
        let l3 = mmwave_phy::fspl_db(ch3.budget.freq_hz, d);
        assert!((l3 - l2 - 0.305).abs() < 0.02, "{}", l3 - l2);
    }

    #[test]
    #[should_panic(expected = "channels 2 and 3")]
    fn invalid_channel_panics() {
        let _ = Environment::new(Room::open_space()).with_channel(5);
    }

    #[test]
    fn atmosphere_spread_covers_several_db() {
        // Over many runs the offsets must spread enough to move the Fig. 13
        // drop distance by metres (≈ 4–5 dB of spread).
        let rng = SimRng::root(7);
        let offsets: Vec<f64> = (0..200)
            .map(|i| {
                Environment::new(Room::open_space())
                    .with_atmosphere(&rng, i)
                    .extra_loss_db
            })
            .collect();
        let lo = offsets.iter().cloned().fold(f64::MAX, f64::min);
        let hi = offsets.iter().cloned().fold(f64::MIN, f64::max);
        assert!(hi - lo > 3.5, "spread {}", hi - lo);
    }
}
