//! Spatial interference graph: who can possibly hear whom.
//!
//! At enterprise density (tens of rooms, 100+ links) most device pairs are
//! so far apart — through so many opaque partitions — that their coupling
//! sits tens of dB below the noise floor. Evaluating the full radiometric
//! chain (path trace, pattern folding, cache bookkeeping) for those pairs
//! is pure overhead. This module prunes them *provably*:
//!
//! * [`coupling_bound_dbm`] — a conservative analytic ceiling on the power
//!   any pattern pair could deliver over distance `d`: peak gains at both
//!   ends, every path as short as the direct line, all paths combining in
//!   phase-free power sum, plus a configured margin for per-device power
//!   offsets and control-frame boosts. Monotone decreasing in `d`.
//! * [`cutoff_distance_m`] — the distance beyond which that ceiling falls
//!   below the configured floor, found by bisection.
//! * [`SpatialIndex`] — a coarse uniform grid (cell edge = cutoff) over
//!   device positions; the 3×3 neighborhood of a cell is a superset of
//!   every device within the cutoff.
//!
//! Pairs beyond the cutoff contribute exactly −300 dBm. [`PruneMode`]
//! mirrors the link-gain cache's `CacheMode` differential idiom:
//! `Enforce` skips the skippable math, `Audit` performs a counter-free
//! recomputation of every pruned pair and panics if one exceeds the
//! floor — so an enforce-mode and an audit-mode campaign must produce
//! byte-identical artifacts, and any unsound bound aborts the audit run.

use crate::environment::Environment;
use mmwave_geom::{shared_tree, Point};
use mmwave_phy::{fspl_db, oxygen_loss_db};
use mmwave_sim::ctx::SimCtx;
use std::cell::Cell;
use std::collections::HashMap;

/// Whether spatial pruning skips the pruned math or verifies it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PruneMode {
    /// Skip evaluation for pairs beyond the cutoff (the fast path).
    #[default]
    Enforce,
    /// Evaluate every pruned pair through a counter-free side computation
    /// and panic if it reaches the floor; return −300 dBm exactly like
    /// `Enforce`. Counters fire identically by construction.
    Audit,
}

impl PruneMode {
    /// Stable identifier (CLI flag value, test labels).
    pub fn as_str(self) -> &'static str {
        match self {
            PruneMode::Enforce => "enforce",
            PruneMode::Audit => "audit",
        }
    }

    /// Inverse of [`PruneMode::as_str`] (CLI flags, wire protocol).
    pub fn from_str(s: &str) -> Option<PruneMode> {
        match s {
            "enforce" => Some(PruneMode::Enforce),
            "audit" => Some(PruneMode::Audit),
            _ => None,
        }
    }
}

/// Conservative inputs to the coupling bound.
#[derive(Clone, Copy, Debug)]
pub struct SpatialConfig {
    /// Pairs whose coupling ceiling is below this receive exactly −300 dBm.
    /// −120 dBm sits ≈ 50 dB under the ~−71.5 dBm noise floor: even one
    /// hundred such interferers summed stay > 25 dB below noise.
    pub floor_dbm: f64,
    /// Ceiling on any device pattern's peak gain, dBi. Trained WiGig
    /// arrays synthesize ≤ ~17 dBi; 20 leaves headroom.
    pub max_gain_dbi: f64,
    /// Additive headroom for per-device power offsets (WiHD runs 8 dB
    /// hotter) and control-frame boosts (6 dB).
    pub margin_db: f64,
}

impl Default for SpatialConfig {
    fn default() -> SpatialConfig {
        SpatialConfig {
            floor_dbm: -120.0,
            max_gain_dbi: 20.0,
            margin_db: 16.0,
        }
    }
}

/// Ceiling on the power any transmission from one device of a pair could
/// deliver at the other over separation `d`, in dBm.
///
/// Every enumerable path is at least `d` long (unfolded reflections only
/// lengthen), loses at least free-space + oxygen over that length, and
/// gains at most `max_gain_dbi` at each end; at most
/// `1 + W + W·(W−1)` paths exist for `W` reflective walls, and they
/// combine incoherently (power sum). Per-device power offsets, boosts and
/// the per-run atmospheric term are covered by `margin_db` and the
/// environment's own budget terms.
pub fn coupling_bound_dbm(env: &Environment, cfg: &SpatialConfig, n_mirrors: usize, d: f64) -> f64 {
    let n_paths = (1 + n_mirrors + n_mirrors * n_mirrors.saturating_sub(1)) as f64;
    env.budget.tx_power_dbm - env.budget.implementation_loss_db - env.extra_loss_db
        + 2.0 * cfg.max_gain_dbi
        + cfg.margin_db
        + 10.0 * n_paths.log10()
        - fspl_db(env.budget.freq_hz, d)
        - oxygen_loss_db(d)
}

/// The separation beyond which [`coupling_bound_dbm`] is strictly below
/// `cfg.floor_dbm`, found by bisection on the monotone bound. Clamped to
/// [0.05 m, 10 km]; returns the upper end of the final bracket, so every
/// distance greater than the result is provably below the floor.
pub fn cutoff_distance_m(env: &Environment, cfg: &SpatialConfig) -> f64 {
    let n = shared_tree(&env.room, &env.trace).node_count();
    let bound = |d: f64| coupling_bound_dbm(env, cfg, n, d);
    let (mut lo, mut hi) = (0.05, 10_000.0);
    if bound(hi) >= cfg.floor_dbm {
        return hi; // nothing is prunable within any indoor scale
    }
    if bound(lo) < cfg.floor_dbm {
        return lo; // everything beyond near-field is prunable
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if bound(mid) >= cfg.floor_dbm {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Coarse uniform grid over device positions. Cell edge equals the
/// coupling cutoff, so the 3×3 neighborhood of any point is a superset of
/// every device within the cutoff of it.
#[derive(Clone, Debug)]
pub struct SpatialIndex {
    cutoff_m: f64,
    cell_m: f64,
    pos: Vec<Point>,
    cells: HashMap<(i64, i64), Vec<usize>>,
}

impl SpatialIndex {
    /// An empty index with the given coupling cutoff.
    pub fn new(cutoff_m: f64) -> SpatialIndex {
        assert!(cutoff_m > 0.0 && cutoff_m.is_finite());
        SpatialIndex {
            cutoff_m,
            cell_m: cutoff_m.max(1.0),
            pos: Vec::new(),
            cells: HashMap::new(),
        }
    }

    /// The coupling cutoff distance.
    pub fn cutoff_m(&self) -> f64 {
        self.cutoff_m
    }

    /// Number of registered devices.
    pub fn tracked(&self) -> usize {
        self.pos.len()
    }

    fn cell_of(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.cell_m).floor() as i64,
            (p.y / self.cell_m).floor() as i64,
        )
    }

    /// Register device `idx`'s position, or move an already-registered
    /// device. Devices must be registered in index order (0, 1, 2, …).
    pub fn set_position(&mut self, idx: usize, p: Point) {
        if idx == self.pos.len() {
            self.pos.push(p);
            self.cells.entry(self.cell_of(p)).or_default().push(idx);
            return;
        }
        assert!(
            idx < self.pos.len(),
            "positions must be registered in order"
        );
        let old = self.pos[idx];
        let (oc, nc) = (self.cell_of(old), self.cell_of(p));
        self.pos[idx] = p;
        if oc != nc {
            let bucket = self.cells.get_mut(&oc).expect("tracked cell");
            bucket.retain(|&d| d != idx);
            self.cells.entry(nc).or_default().push(idx);
        }
    }

    /// The registered position of device `idx`.
    pub fn position(&self, idx: usize) -> Point {
        self.pos[idx]
    }

    /// True if two positions are geometrically coupled (within the cutoff).
    pub fn coupled(&self, a: Point, b: Point) -> bool {
        a.distance(b) <= self.cutoff_m
    }

    /// Collect every device in the 3×3 cell neighborhood of `center` into
    /// `out` (cleared first) — a superset of all devices within the
    /// cutoff. Order is deterministic: cell-major, insertion order within
    /// a cell.
    pub fn neighbors_into(&self, center: Point, out: &mut Vec<usize>) {
        out.clear();
        let (cx, cy) = self.cell_of(center);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    out.extend_from_slice(bucket);
                }
            }
        }
    }
}

/// Per-context prune-mode override slot (the `cc::install_override`
/// idiom): a campaign stamps the mode into every task's context instead
/// of threading a parameter through each experiment constructor.
struct PruneOverride(Cell<Option<PruneMode>>);

/// Force every spatially-pruned medium built through `ctx` into `mode`.
pub fn install_override(ctx: &SimCtx, mode: PruneMode) {
    ctx.ext_or_insert_with(|| PruneOverride(Cell::new(None)))
        .0
        .set(Some(mode));
}

/// The prune mode installed on `ctx`, if any.
pub fn override_of(ctx: &SimCtx) -> Option<PruneMode> {
    ctx.ext_or_insert_with(|| PruneOverride(Cell::new(None)))
        .0
        .get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_geom::Room;

    fn env() -> Environment {
        Environment::new(Room::open_space())
    }

    #[test]
    fn bound_is_monotone_decreasing_in_distance() {
        let e = env();
        let cfg = SpatialConfig::default();
        let mut prev = f64::INFINITY;
        for d in [0.1, 0.5, 1.0, 3.0, 10.0, 40.0, 200.0, 2000.0] {
            let b = coupling_bound_dbm(&e, &cfg, 4, d);
            assert!(b <= prev, "bound rose at {d} m");
            prev = b;
        }
    }

    #[test]
    fn more_mirrors_raise_the_bound() {
        let e = env();
        let cfg = SpatialConfig::default();
        assert!(coupling_bound_dbm(&e, &cfg, 20, 5.0) > coupling_bound_dbm(&e, &cfg, 0, 5.0));
    }

    #[test]
    fn cutoff_is_sound_and_tight() {
        let e = env();
        let cfg = SpatialConfig::default();
        let cut = cutoff_distance_m(&e, &cfg);
        assert!(cut > 1.0 && cut < 10_000.0, "cutoff {cut}");
        let n = 0; // open space: LoS only
        assert!(coupling_bound_dbm(&e, &cfg, n, cut * 1.001) < cfg.floor_dbm);
        assert!(coupling_bound_dbm(&e, &cfg, n, cut * 0.9) >= cfg.floor_dbm);
    }

    #[test]
    fn raising_the_floor_shrinks_the_cutoff() {
        let e = env();
        let lo = SpatialConfig {
            floor_dbm: -140.0,
            ..SpatialConfig::default()
        };
        let hi = SpatialConfig {
            floor_dbm: -100.0,
            ..SpatialConfig::default()
        };
        assert!(cutoff_distance_m(&e, &hi) < cutoff_distance_m(&e, &lo));
    }

    #[test]
    fn grid_neighborhood_covers_everything_within_cutoff() {
        let mut idx = SpatialIndex::new(7.0);
        let pts: Vec<Point> = (0..60)
            .map(|i| {
                let a = i as f64 * 0.7;
                Point::new(30.0 * (a.sin() * 0.5 + 0.5), 25.0 * (a.cos() * 0.5 + 0.5))
            })
            .collect();
        for (i, &p) in pts.iter().enumerate() {
            idx.set_position(i, p);
        }
        let mut out = Vec::new();
        for (i, &p) in pts.iter().enumerate() {
            idx.neighbors_into(p, &mut out);
            for (j, &q) in pts.iter().enumerate() {
                if p.distance(q) <= idx.cutoff_m() {
                    assert!(out.contains(&j), "device {j} within cutoff of {i} missed");
                }
            }
        }
    }

    #[test]
    fn grid_tracks_moves_across_cells() {
        let mut idx = SpatialIndex::new(2.0);
        idx.set_position(0, Point::new(0.5, 0.5));
        idx.set_position(1, Point::new(100.0, 100.0));
        let mut out = Vec::new();
        idx.neighbors_into(Point::new(0.0, 0.0), &mut out);
        assert_eq!(out, vec![0]);
        idx.set_position(1, Point::new(1.0, 1.0));
        idx.neighbors_into(Point::new(0.0, 0.0), &mut out);
        assert!(out.contains(&0) && out.contains(&1));
        idx.set_position(0, Point::new(-50.0, 3.0));
        idx.neighbors_into(Point::new(0.0, 0.0), &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn override_slot_is_per_context() {
        let ctx = SimCtx::new();
        assert_eq!(override_of(&ctx), None);
        install_override(&ctx, PruneMode::Audit);
        assert_eq!(override_of(&ctx), Some(PruneMode::Audit));
        assert_eq!(override_of(&ctx.clone()), Some(PruneMode::Audit));
        assert_eq!(override_of(&SimCtx::new()), None);
    }
}
