//! # mmwave-channel — composing geometry and PHY into radio links
//!
//! This crate answers the one question every experiment keeps asking:
//! *given two devices with particular antenna patterns, positions and
//! orientations inside a particular room, how much power arrives, over
//! which paths, and with what SINR under concurrent transmissions?*
//!
//! * [`node`] — a positioned, oriented radio ([`RadioNode`]): world-to-array
//!   azimuth conversion lives here and nowhere else.
//! * [`environment`] — the immutable scene: room geometry, ray-tracing
//!   limits, the link budget, plus a per-run atmospheric loss offset (the
//!   day-to-day spread behind Fig. 13's 10–17 m range variation).
//! * [`propagate`] — per-path received power with TX/RX pattern weighting,
//!   incoherent multipath combination, SINR, and per-direction incident
//!   power (the primitive behind the angular-profile scans of Figs. 18–20).
//! * [`fading`] — slow AR(1) link fading and the sparse perturbation
//!   process that triggers the beam realignments of Fig. 14.
//! * [`linkgain`] — the memoized radiometric link-gain cache: linear
//!   pattern-weighted gains per (device, pattern) pair with generation-based
//!   invalidation, the fast path under the MAC's carrier-sense and
//!   sector-sweep loops.

pub mod environment;
pub mod fading;
pub mod linkgain;
pub mod node;
pub mod propagate;
pub mod spatial;

pub use environment::Environment;
pub use fading::{Ar1Fading, PerturbationProcess};
pub use linkgain::{CacheMode, CacheStats, LinkGainCache, PatId};
pub use node::{NodeId, RadioNode};
pub use propagate::{incident_from_direction, link_state, sinr_db, LinkState, PathGain};
pub use spatial::{coupling_bound_dbm, cutoff_distance_m, PruneMode, SpatialConfig, SpatialIndex};
