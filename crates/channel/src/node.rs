//! Positioned, oriented radios.

use mmwave_geom::{Angle, Point};
use mmwave_phy::AntennaPattern;
use std::fmt;

/// Identifier of a radio node within a scenario.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A radio node: a position and the world azimuth its array boresight
/// points at. The antenna *pattern* is not stored here — devices swap
/// patterns constantly (sector sweeps, quasi-omni discovery), so patterns
/// are passed per call.
#[derive(Clone, Debug)]
pub struct RadioNode {
    /// Identifier.
    pub id: NodeId,
    /// Diagnostic name ("Dock A", "HDMI TX", …).
    pub label: String,
    /// Position in the room plane, metres.
    pub position: Point,
    /// World azimuth of the array boresight.
    pub orientation: Angle,
}

impl RadioNode {
    /// Construct a node.
    pub fn new(id: usize, label: impl Into<String>, position: Point, orientation: Angle) -> Self {
        RadioNode {
            id: NodeId(id),
            label: label.into(),
            position,
            orientation,
        }
    }

    /// Convert a world azimuth into this node's array-local azimuth.
    pub fn to_local(&self, world: Angle) -> Angle {
        world - self.orientation
    }

    /// World azimuth from this node towards a point.
    pub fn azimuth_to(&self, p: Point) -> Angle {
        Angle::from_radians((p - self.position).angle())
    }

    /// Gain of `pattern` (mounted on this node) towards the world azimuth
    /// `world_dir`, in dBi.
    pub fn gain_toward(&self, pattern: &AntennaPattern, world_dir: Angle) -> f64 {
        pattern.gain_dbi(self.to_local(world_dir))
    }

    /// Point the boresight at a target position.
    pub fn face(&mut self, target: Point) {
        self.orientation = self.azimuth_to(target);
    }

    /// A copy rotated by `delta` (the paper's 70° misalignment setup).
    pub fn rotated(&self, delta: Angle) -> RadioNode {
        let mut n = self.clone();
        n.orientation = n.orientation + delta;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_conversion() {
        let n = RadioNode::new(0, "dock", Point::new(0.0, 0.0), Angle::from_degrees(90.0));
        // A world direction of 90° is boresight (0° local).
        assert!(n.to_local(Angle::from_degrees(90.0)).radians().abs() < 1e-12);
        assert!((n.to_local(Angle::from_degrees(135.0)).degrees() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn azimuth_to_points_at_target() {
        let n = RadioNode::new(0, "a", Point::new(1.0, 1.0), Angle::ZERO);
        let az = n.azimuth_to(Point::new(1.0, 5.0));
        assert!((az.degrees() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn face_aligns_boresight() {
        let mut n = RadioNode::new(0, "a", Point::new(0.0, 0.0), Angle::ZERO);
        n.face(Point::new(-3.0, 0.0));
        assert!((n.orientation.degrees().abs() - 180.0).abs() < 1e-9);
        assert!(
            n.to_local(n.azimuth_to(Point::new(-3.0, 0.0)))
                .radians()
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn gain_toward_uses_orientation() {
        let pat = AntennaPattern::from_fn(720, |a| 20.0 - a.distance(Angle::ZERO).to_degrees());
        let n = RadioNode::new(0, "a", Point::ORIGIN, Angle::from_degrees(45.0));
        // Towards 45° world = boresight: full gain.
        assert!((n.gain_toward(&pat, Angle::from_degrees(45.0)) - 20.0).abs() < 0.01);
        // Towards 75° world = 30° off boresight.
        assert!((n.gain_toward(&pat, Angle::from_degrees(75.0)) - (20.0 - 30.0)).abs() < 0.1);
    }

    #[test]
    fn rotated_copy() {
        let n = RadioNode::new(0, "a", Point::ORIGIN, Angle::from_degrees(10.0));
        let r = n.rotated(Angle::from_degrees(70.0));
        assert!((r.orientation.degrees() - 80.0).abs() < 1e-9);
        assert!(
            (n.orientation.degrees() - 10.0).abs() < 1e-9,
            "original untouched"
        );
    }
}
