//! Pattern-weighted multipath power and SINR.
//!
//! Everything radiometric in the workspace funnels through [`link_state`]:
//! the MAC's frame delivery, the capture crate's trace amplitudes, and the
//! angular-profile scans (via [`incident_from_direction`]). Multipath
//! components combine *incoherently* (power sum): with 1.76 GHz of
//! bandwidth, path delay differences of even 20 cm exceed the symbol
//! period, so paths do not interfere coherently at the detector — they act
//! as separate energy contributions (and as self-interference only through
//! equalizer limits, which the implementation-loss budget absorbs).

use crate::environment::Environment;
use crate::node::RadioNode;
use mmwave_geom::{Angle, PropPath};
use mmwave_phy::{db_to_lin, lin_to_db, AntennaPattern};

/// One path with its received power after pattern weighting.
#[derive(Clone, Debug)]
pub struct PathGain {
    /// The underlying geometric path.
    pub path: PropPath,
    /// Received power over this path, dBm.
    pub rx_dbm: f64,
}

/// The radiometric state of a directed link for fixed patterns.
#[derive(Clone, Debug)]
pub struct LinkState {
    /// All contributing paths, sorted by descending received power.
    pub paths: Vec<PathGain>,
    /// Incoherent total received power, dBm (−300 if no path exists).
    pub total_dbm: f64,
}

impl LinkState {
    /// The strongest path, if any path exists.
    pub fn dominant(&self) -> Option<&PathGain> {
        self.paths.first()
    }

    /// True if no energy arrives at all (fully blocked, no reflections).
    pub fn is_disconnected(&self) -> bool {
        self.paths.is_empty()
    }

    /// SNR of the total received power against the environment noise floor.
    pub fn snr_db(&self, noise_floor_dbm: f64) -> f64 {
        self.total_dbm - noise_floor_dbm
    }
}

/// Compute the link state from `tx` (radiating `tx_pattern`) to `rx`
/// (listening with `rx_pattern`) in `env`.
pub fn link_state(
    env: &Environment,
    tx: &RadioNode,
    tx_pattern: &AntennaPattern,
    rx: &RadioNode,
    rx_pattern: &AntennaPattern,
) -> LinkState {
    let geo_paths = env.paths(tx.position, rx.position);
    let mut paths: Vec<PathGain> = geo_paths
        .into_iter()
        .map(|path| {
            let tx_gain = tx.gain_toward(tx_pattern, path.departure);
            let rx_gain = rx.gain_toward(rx_pattern, path.arrival);
            let rx_dbm = env.budget.rx_power_dbm(tx_gain, rx_gain, &path) - env.extra_loss_db;
            PathGain { path, rx_dbm }
        })
        .collect();
    paths.sort_by(|a, b| b.rx_dbm.partial_cmp(&a.rx_dbm).expect("finite powers"));
    let total_dbm = lin_to_db(paths.iter().map(|p| db_to_lin(p.rx_dbm)).sum());
    LinkState { paths, total_dbm }
}

/// Power incident at `rx` from within ±`half_width` of world azimuth
/// `look_dir`, in dBm — what a rotating horn pointed at `look_dir` would
/// capture from transmitter `tx`. Paths outside the acceptance window are
/// still weighted by the horn pattern (its floor), not discarded: a strong
/// enough off-axis path leaks in exactly as with real equipment.
pub fn incident_from_direction(
    env: &Environment,
    tx: &RadioNode,
    tx_pattern: &AntennaPattern,
    rx_position: mmwave_geom::Point,
    horn: &AntennaPattern,
    look_dir: Angle,
) -> f64 {
    let rx = RadioNode::new(usize::MAX - 1, "probe", rx_position, look_dir);
    link_state(env, tx, tx_pattern, &rx, horn).total_dbm
}

/// SINR in dB: `serving` against the power sum of `interferers` plus the
/// thermal noise floor.
pub fn sinr_db(serving_dbm: f64, interferers_dbm: &[f64], noise_floor_dbm: f64) -> f64 {
    let denom =
        db_to_lin(noise_floor_dbm) + interferers_dbm.iter().map(|&p| db_to_lin(p)).sum::<f64>();
    serving_dbm - lin_to_db(denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_geom::{Material, Point, Room, Segment, Wall};
    use mmwave_phy::{horn_25dbi, AntennaPattern};

    fn iso() -> AntennaPattern {
        AntennaPattern::isotropic(0.0)
    }

    fn open_env() -> Environment {
        Environment::new(Room::open_space())
    }

    #[test]
    fn los_link_power_matches_budget() {
        let env = open_env();
        let tx = RadioNode::new(0, "tx", Point::new(0.0, 0.0), Angle::ZERO);
        let rx = RadioNode::new(1, "rx", Point::new(2.0, 0.0), Angle::from_degrees(180.0));
        let st = link_state(&env, &tx, &iso(), &rx, &iso());
        assert_eq!(st.paths.len(), 1);
        // 7 dBm − FSPL(2 m ≈ 74.1 dB) − impl 9.5 dB ≈ −76.6 dBm.
        assert!((st.total_dbm + 76.6).abs() < 0.3, "{}", st.total_dbm);
        assert!(!st.is_disconnected());
    }

    #[test]
    fn directional_gain_applies_along_departure() {
        let env = open_env();
        let tx = RadioNode::new(0, "tx", Point::new(0.0, 0.0), Angle::ZERO);
        let rx = RadioNode::new(1, "rx", Point::new(3.0, 0.0), Angle::from_degrees(180.0));
        let omni = link_state(&env, &tx, &iso(), &rx, &iso()).total_dbm;
        // A 25 dBi horn facing the receiver adds exactly its boresight gain.
        let horned = link_state(&env, &tx, &horn_25dbi(), &rx, &iso()).total_dbm;
        assert!((horned - omni - 25.0).abs() < 0.05);
        // Facing away, the horn's floor (25−35 = −10 dBi) applies.
        let mut tx_away = tx.clone();
        tx_away.orientation = Angle::from_degrees(180.0);
        let away = link_state(&env, &tx_away, &horn_25dbi(), &rx, &iso()).total_dbm;
        assert!((away - omni + 10.0).abs() < 0.05);
    }

    #[test]
    fn extra_loss_shifts_everything() {
        let mut env = open_env();
        let tx = RadioNode::new(0, "tx", Point::new(0.0, 0.0), Angle::ZERO);
        let rx = RadioNode::new(1, "rx", Point::new(5.0, 0.0), Angle::ZERO);
        let base = link_state(&env, &tx, &iso(), &rx, &iso()).total_dbm;
        env.extra_loss_db = 3.0;
        let lossy = link_state(&env, &tx, &iso(), &rx, &iso()).total_dbm;
        assert!((base - lossy - 3.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_link_uses_reflection() {
        let mut room = Room::open_space();
        room.add_wall(Wall::new(
            Segment::new(Point::new(-1.0, 2.0), Point::new(7.0, 2.0)),
            Material::Metal,
            "wall",
        ));
        room.add_obstacle(
            Segment::new(Point::new(3.0, -1.0), Point::new(3.0, 1.0)),
            Material::Human,
            "blocker",
        );
        let env = Environment::new(room);
        let tx = RadioNode::new(0, "tx", Point::new(0.0, 0.0), Angle::ZERO);
        let rx = RadioNode::new(1, "rx", Point::new(6.0, 0.0), Angle::ZERO);
        let st = link_state(&env, &tx, &iso(), &rx, &iso());
        assert!(!st.is_disconnected(), "reflection must survive blockage");
        let dom = st.dominant().expect("path");
        assert_eq!(dom.path.order(), 1, "dominant path must be the wall bounce");
    }

    #[test]
    fn fully_shielded_link_disconnects() {
        let mut room = Room::open_space();
        // Absorber box around the receiver.
        let p = Point::new;
        for (a, b) in [
            (p(4.0, -1.0), p(4.0, 1.0)),
            (p(6.0, -1.0), p(6.0, 1.0)),
            (p(4.0, 1.0), p(6.0, 1.0)),
            (p(4.0, -1.0), p(6.0, -1.0)),
        ] {
            room.add_obstacle(Segment::new(a, b), Material::Absorber, "shield");
        }
        let env = Environment::new(room);
        let tx = RadioNode::new(0, "tx", p(0.0, 0.0), Angle::ZERO);
        let rx = RadioNode::new(1, "rx", p(5.0, 0.0), Angle::ZERO);
        let st = link_state(&env, &tx, &iso(), &rx, &iso());
        assert!(st.is_disconnected());
        assert_eq!(st.total_dbm, -300.0);
    }

    #[test]
    fn multipath_total_exceeds_dominant() {
        let room = Room::rectangular(
            8.0,
            4.0,
            (
                Material::Metal,
                Material::Metal,
                Material::Metal,
                Material::Metal,
            ),
        );
        let env = Environment::new(room);
        let tx = RadioNode::new(0, "tx", Point::new(1.0, 2.0), Angle::ZERO);
        let rx = RadioNode::new(1, "rx", Point::new(7.0, 2.0), Angle::ZERO);
        let st = link_state(&env, &tx, &iso(), &rx, &iso());
        assert!(st.paths.len() > 3);
        let dom = st.dominant().expect("dominant").rx_dbm;
        assert!(st.total_dbm > dom);
        assert!(
            st.total_dbm < dom + 10.0,
            "reflections cannot dwarf LoS here"
        );
        // Sorted descending.
        for w in st.paths.windows(2) {
            assert!(w[0].rx_dbm >= w[1].rx_dbm);
        }
    }

    #[test]
    fn sinr_reduces_with_interference() {
        let noise = -71.5;
        let clean = sinr_db(-50.0, &[], noise);
        assert!((clean - 21.5).abs() < 1e-9);
        // An interferer at the noise floor costs ≈ 3 dB.
        let one = sinr_db(-50.0, &[noise], noise);
        assert!((clean - one - 3.01).abs() < 0.01);
        // A dominant interferer sets the SIR.
        let strong = sinr_db(-50.0, &[-45.0], noise);
        assert!((strong + 5.0).abs() < 0.1, "{strong}");
    }

    #[test]
    fn horn_scan_sees_the_transmitter_direction() {
        let env = open_env();
        let tx = RadioNode::new(0, "tx", Point::new(5.0, 0.0), Angle::from_degrees(180.0));
        let probe = Point::new(0.0, 0.0);
        let toward = incident_from_direction(&env, &tx, &iso(), probe, &horn_25dbi(), Angle::ZERO);
        let away = incident_from_direction(
            &env,
            &tx,
            &iso(),
            probe,
            &horn_25dbi(),
            Angle::from_degrees(120.0),
        );
        assert!(toward > away + 30.0, "toward {toward} away {away}");
    }
}
