//! Slow channel dynamics.
//!
//! Two distinct processes shape the paper's long time-scale observations:
//!
//! * **AR(1) slow fading** — small, correlated wobble of the link gain
//!   (people far away, temperature drift, oscillator gain variation). This
//!   makes the 8 m / 14 m traces in Fig. 12 fluctuate across MCS
//!   boundaries while the 2 m trace stays pinned at the top rate.
//! * **Perturbation events** — sparse, larger disturbances that change the
//!   optimal beam pair and trigger a realignment. Fig. 14 shows these:
//!   every amplitude step over the 80-minute trace coincides with a rate
//!   change because beam selection and rate adaptation are one joint
//!   process on the D5000.

use mmwave_sim::rng::SimRng;
use mmwave_sim::time::{SimDuration, SimTime};

/// First-order autoregressive gain process in dB:
/// `x' = ρ·x + √(1−ρ²)·σ·w`, stepped on a fixed tick.
#[derive(Debug)]
pub struct Ar1Fading {
    level_db: f64,
    sigma_db: f64,
    rho: f64,
    tick: SimDuration,
    last_step: SimTime,
    rng: SimRng,
}

impl Ar1Fading {
    /// Create a fading process.
    ///
    /// * `sigma_db` — stationary standard deviation of the gain wobble.
    /// * `correlation_time` — time for the autocorrelation to fall to 1/e.
    /// * `tick` — update granularity (the process is stepped lazily).
    pub fn new(
        rng: SimRng,
        sigma_db: f64,
        correlation_time: SimDuration,
        tick: SimDuration,
    ) -> Ar1Fading {
        assert!(sigma_db >= 0.0 && !tick.is_zero());
        let rho = (-(tick.as_secs_f64() / correlation_time.as_secs_f64())).exp();
        Ar1Fading {
            level_db: 0.0,
            sigma_db,
            rho,
            tick,
            last_step: SimTime::ZERO,
            rng,
        }
    }

    /// Typical link fading for a static indoor 60 GHz link: σ = 1.2 dB,
    /// ~6 s correlation, 1 s ticks (people and doors moving at the edge of
    /// the environment wobble even a "static" link on this time scale —
    /// compare the fluctuations of Figs. 12/23).
    pub fn indoor_default(rng: SimRng) -> Ar1Fading {
        Ar1Fading::new(
            rng,
            1.2,
            SimDuration::from_secs(6),
            SimDuration::from_secs(1),
        )
    }

    /// Gain offset (dB) at simulated time `now`; steps the process forward
    /// as many ticks as have elapsed. Calls must use non-decreasing `now`.
    pub fn level_at(&mut self, now: SimTime) -> f64 {
        debug_assert!(now >= self.last_step, "fading stepped backwards");
        let steps = now.since(self.last_step) / self.tick;
        // Avoid unbounded catch-up loops after long idle gaps: beyond ~30
        // correlation times the state is independent anyway.
        let max_steps = 2000;
        if steps > max_steps {
            self.level_db = self.rng.normal(0.0, self.sigma_db);
            self.last_step = now;
            return self.level_db;
        }
        for _ in 0..steps {
            let innovation = (1.0 - self.rho * self.rho).sqrt() * self.sigma_db;
            self.level_db = self.rho * self.level_db + self.rng.normal(0.0, innovation);
            self.last_step += self.tick;
        }
        self.level_db
    }
}

/// Sparse channel perturbations: Poisson events that each shift the
/// channel by a random amount, prompting the device to retrain its beam.
#[derive(Debug)]
pub struct PerturbationProcess {
    next_at: SimTime,
    mean_interval: SimDuration,
    shift_sigma_db: f64,
    rng: SimRng,
    /// Cumulative gain shift applied by past events, dB.
    current_shift_db: f64,
}

/// A perturbation event: when it happened and the new cumulative shift.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Perturbation {
    /// Event time.
    pub at: SimTime,
    /// New cumulative gain shift, dB.
    pub shift_db: f64,
}

impl PerturbationProcess {
    /// Create a process with exponential inter-arrival times.
    pub fn new(mut rng: SimRng, mean_interval: SimDuration, shift_sigma_db: f64) -> Self {
        let first = SimDuration::from_secs_f64(rng.exponential(mean_interval.as_secs_f64()));
        PerturbationProcess {
            next_at: SimTime::ZERO + first,
            mean_interval,
            shift_sigma_db,
            rng,
            current_shift_db: 0.0,
        }
    }

    /// The Fig. 14 regime: a realignment-provoking event every ~8 minutes
    /// on average, shifting the channel by σ = 2.5 dB.
    pub fn fig14_default(rng: SimRng) -> Self {
        PerturbationProcess::new(rng, SimDuration::from_secs(8 * 60), 2.5)
    }

    /// Advance to `now`, returning every event that fired in the interval
    /// (possibly none). The cumulative shift decays towards zero at each
    /// event so the channel doesn't random-walk away.
    pub fn poll(&mut self, now: SimTime) -> Vec<Perturbation> {
        let mut events = Vec::new();
        while self.next_at <= now {
            let fresh = self.rng.normal(0.0, self.shift_sigma_db);
            self.current_shift_db = 0.5 * self.current_shift_db + fresh;
            events.push(Perturbation {
                at: self.next_at,
                shift_db: self.current_shift_db,
            });
            let gap = SimDuration::from_secs_f64(
                self.rng
                    .exponential(self.mean_interval.as_secs_f64())
                    .max(1.0),
            );
            self.next_at += gap;
        }
        events
    }

    /// The current cumulative shift, dB.
    pub fn current_shift_db(&self) -> f64 {
        self.current_shift_db
    }

    /// Time of the next scheduled event (for test introspection).
    pub fn next_at(&self) -> SimTime {
        self.next_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::root(99).stream("fading-test")
    }

    #[test]
    fn fading_is_zero_at_start() {
        let mut f = Ar1Fading::indoor_default(rng());
        assert_eq!(f.level_at(SimTime::ZERO), 0.0);
    }

    #[test]
    fn fading_stationary_moments() {
        let mut f = Ar1Fading::new(
            rng(),
            2.0,
            SimDuration::from_secs(5),
            SimDuration::from_millis(500),
        );
        let mut samples = Vec::new();
        // Skip burn-in, then collect.
        for i in 0..20_000u64 {
            let t = SimTime::from_millis(500 * i);
            let v = f.level_at(t);
            if i > 200 {
                samples.push(v);
            }
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.4, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.4, "sd {}", var.sqrt());
    }

    #[test]
    fn fading_is_correlated_over_short_times() {
        let mut f = Ar1Fading::indoor_default(rng());
        // Warm the process up.
        let mut t = SimTime::from_secs(100);
        let a = f.level_at(t);
        t += SimDuration::from_secs(1);
        let b = f.level_at(t);
        // One second apart with 6 s correlation: the innovation std is
        // σ·√(1−ρ²) ≈ 0.64 dB, so a 2.5 dB jump would be > 3.9σ.
        assert!((a - b).abs() < 2.5, "a {a} b {b}");
    }

    #[test]
    fn fading_long_gap_resamples() {
        let mut f = Ar1Fading::indoor_default(rng());
        let _ = f.level_at(SimTime::ZERO);
        // A gap of days: lazily resampled, still finite and reasonable.
        let v = f.level_at(SimTime::from_secs(200_000));
        assert!(v.abs() < 10.0);
    }

    #[test]
    fn perturbations_fire_roughly_at_rate() {
        let mut p = PerturbationProcess::new(rng(), SimDuration::from_secs(60), 2.0);
        let events = p.poll(SimTime::from_secs(60 * 60));
        // One hour at one event per minute: expect ~60, accept wide band.
        assert!(
            (30..=100).contains(&events.len()),
            "{} events",
            events.len()
        );
        // Events are time-ordered.
        for w in events.windows(2) {
            assert!(w[1].at > w[0].at);
        }
    }

    #[test]
    fn poll_is_incremental() {
        let mut p = PerturbationProcess::new(rng(), SimDuration::from_secs(10), 1.0);
        let first = p.poll(SimTime::from_secs(300));
        let again = p.poll(SimTime::from_secs(300));
        assert!(!first.is_empty());
        assert!(again.is_empty(), "same horizon must not re-emit events");
        let more = p.poll(SimTime::from_secs(600));
        assert!(!more.is_empty());
    }

    #[test]
    fn shift_does_not_random_walk_away() {
        let mut p = PerturbationProcess::new(rng(), SimDuration::from_secs(10), 2.0);
        let events = p.poll(SimTime::from_secs(100_000));
        let max_abs = events.iter().map(|e| e.shift_db.abs()).fold(0.0, f64::max);
        // With the 0.5 decay, the shift stays bounded (σ_stat ≈ 2.3 dB).
        assert!(max_abs < 12.0, "shift escaped: {max_abs}");
    }
}
