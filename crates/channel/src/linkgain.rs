//! Memoized radiometric link gains with generation-based invalidation.
//!
//! The frame-level experiments simulate thousands of frames over a *static*
//! room with a *finite* set of codebook patterns, yet the naive radiometric
//! chain recomputes ray-trace lookups, per-path pattern interpolation and
//! `powf`-based dB↔linear conversions on every frame start. This module
//! memoizes the quantity all of those computations reduce to: the total
//! **linear pattern-weighted link gain**
//!
//! ```text
//! G(src, src_pat, dst, dst_pat) = Σ_paths  L_p · g_src(θ_dep) · g_dst(θ_arr)
//! ```
//!
//! where `L_p = 10^(−path_loss/10)` folds Friis, oxygen absorption and
//! reflection losses into one linear factor per path, and the pattern gains
//! are evaluated in the linear domain from pre-resolved sample indices.
//! Received power is then one table lookup plus additive dB offsets:
//! `rx_dbm = lin_to_db(G) + tx_power − impl_loss + per-device offsets`.
//!
//! ## Interning and the reverse view
//!
//! Path sets are interned once per *unordered* device pair under the
//! canonical key `(min_idx, max_idx)`. By ray reciprocity the reverse link
//! uses the same geometry with departure and arrival swapped: a traced path
//! stores, at each endpoint, the world azimuth toward its first bounce, and
//! that azimuth serves as departure when the endpoint transmits and as
//! arrival when it receives. No second trace, no second entry.
//!
//! ## Generations instead of flushes
//!
//! Every device carries two monotonically increasing generation counters:
//!
//! * `pos_gen` — bumped when the device moves. Interned paths and all gains
//!   involving the device become stale.
//! * `orient_gen` — bumped when the device rotates in place. Paths stay
//!   valid (geometry is unchanged); only the pattern-weighted gains and the
//!   resolved sample indices go stale.
//!
//! Staleness is checked lazily by stamp comparison at lookup time, so a
//! bump is O(1) and never touches entries of unaffected pairs — replacing
//! the previous whole-table `invalidate_paths()` flush.
//!
//! ## Bypass mode
//!
//! [`CacheMode::Bypass`] performs *identical bookkeeping* — the same
//! interning, the same stamps, the same hit/miss/invalidation counters —
//! but always returns a freshly recomputed value instead of trusting a
//! memoized entry. A full experiment run in bypass mode must therefore
//! produce byte-identical campaign artifacts (counters included) to a
//! cached run; any divergence means a stale entry leaked through the
//! generation scheme. The campaign determinism suite asserts exactly that.

use crate::environment::Environment;
use crate::node::RadioNode;
use mmwave_phy::{db_to_lin, lin_to_db, path_loss_db, AntennaPattern, Codebook};
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::hash::FastMap;

// The cache mode lives on the simulation context; re-exported here because
// it is, first and foremost, the link-gain cache's policy knob.
pub use mmwave_sim::ctx::CacheMode;

/// Opaque pattern identity *within one device*. The cache never inspects
/// patterns; callers assign stable ids (e.g. sector index, with a flag bit
/// for quasi-omni patterns) and guarantee that equal `(device, PatId)`
/// always denotes the same pattern samples.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PatId(pub u32);

/// Local cache-activity counters (the same events also stream into the
/// cache's [`SimCtx`] for campaign artifacts).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Gain lookups answered by a stamp-current entry.
    pub gain_hits: u64,
    /// Gain lookups that computed (cold) or recomputed (stale) an entry.
    pub gain_misses: u64,
    /// Sector-table lookups answered by a stamp-current table.
    pub table_hits: u64,
    /// Sector tables built or rebuilt.
    pub table_builds: u64,
    /// Ray traces performed to fill or refresh an interned path set.
    pub path_traces: u64,
    /// Invalidation events (position/orientation bumps and global flushes).
    pub invalidations: u64,
}

/// The traced paths of one interned pair with their direction-independent
/// radiometrics pre-folded, stored as parallel arrays (structure of arrays):
/// the gain folds iterate one quantity across all paths at a time, so each
/// fold walks one dense slice instead of striding through per-path structs.
#[derive(Clone, Debug, Default)]
struct FoldedPaths {
    /// `10^(−path_loss/10)` per path: Friis + oxygen + reflection, linear.
    base_lin: Vec<f64>,
    /// World azimuth from the lower-indexed endpoint toward its first
    /// bounce (departure when `lo` transmits, arrival when it receives).
    lo_world: Vec<mmwave_geom::Angle>,
    /// World azimuth from the higher-indexed endpoint toward its last
    /// bounce (arrival when `lo` transmits, departure when `hi` does).
    hi_world: Vec<mmwave_geom::Angle>,
}

impl FoldedPaths {
    fn len(&self) -> usize {
        self.base_lin.len()
    }

    /// The endpoint-side world azimuths, one per path.
    fn world(&self, side: Side) -> &[mmwave_geom::Angle] {
        match side {
            Side::Lo => &self.lo_world,
            Side::Hi => &self.hi_world,
        }
    }
}

/// Pattern sample indices resolved for one endpoint of an interned pair,
/// as parallel arrays in path order (the SoA mate of [`FoldedPaths`]).
#[derive(Clone, Debug, Default)]
struct Resolved {
    /// Orientation generation of the endpoint when resolved.
    orient_gen: u64,
    /// Sample count of the pattern family the triples index into.
    n: usize,
    /// Lower sample index per path.
    i0: Vec<u32>,
    /// Upper (wrapped) sample index per path.
    i1: Vec<u32>,
    /// Interpolation fraction per path.
    frac: Vec<f64>,
}

/// Interned path set for one unordered device pair.
#[derive(Clone, Debug)]
struct PairEntry {
    lo_pos_gen: u64,
    hi_pos_gen: u64,
    paths: FoldedPaths,
    lo_res: Resolved,
    hi_res: Resolved,
}

/// Generation stamp a gain entry was computed under: position and
/// orientation generations of source and destination.
type Stamp = (u64, u64, u64, u64);

#[derive(Clone, Copy, Debug)]
struct GainEntry {
    stamp: Stamp,
    lin: f64,
    /// `lin_to_db(lin)` memoized at fill time (`NEG_INFINITY` for a dead
    /// link). The conversion is deterministic in the bits of `lin`, so a
    /// hit returns exactly what recomputing would — and the per-frame
    /// receive-power path stays free of `log10`.
    db: f64,
}

/// Full sector-pair gain table for one unordered device pair, stored in
/// canonical orientation (rows = lo sectors, cols = hi sectors).
#[derive(Clone, Debug)]
struct TableEntry {
    stamp: Stamp,
    n_lo: usize,
    n_hi: usize,
    /// `lin[s_lo · n_hi + s_hi]` — total linear link gain for that pair.
    lin: Vec<f64>,
    /// Argmax of `lin` as `(s_lo, s_hi, gain_lin)`.
    best: (usize, usize, f64),
}

/// Memoized radiometric link gains, keyed by device indices and [`PatId`]s.
///
/// The cache is device-representation-agnostic: callers pass explicit
/// device indices (stable within one scenario), node poses and pattern
/// references per call. See the module docs for the memoization and
/// invalidation scheme.
#[derive(Clone, Debug)]
pub struct LinkGainCache {
    mode: CacheMode,
    ctx: SimCtx,
    pos_gen: Vec<u64>,
    orient_gen: Vec<u64>,
    pairs: FastMap<(usize, usize), PairEntry>,
    gains: FastMap<(usize, usize, u32, u32), GainEntry>,
    tables: FastMap<(usize, usize), TableEntry>,
    stats: CacheStats,
}

impl Default for LinkGainCache {
    fn default() -> Self {
        Self::new()
    }
}

impl LinkGainCache {
    /// A cache on a fresh private context (mode [`CacheMode::Cached`]).
    /// Simulations that report counters build through [`Self::with_ctx`].
    pub fn new() -> LinkGainCache {
        Self::with_ctx(&SimCtx::new())
    }

    /// A cache adopting `ctx`'s cache mode and streaming its hit/miss/
    /// invalidation counters into `ctx`.
    pub fn with_ctx(ctx: &SimCtx) -> LinkGainCache {
        LinkGainCache {
            mode: ctx.cache_mode(),
            ctx: ctx.clone(),
            pos_gen: Vec::new(),
            orient_gen: Vec::new(),
            pairs: FastMap::default(),
            gains: FastMap::default(),
            tables: FastMap::default(),
            stats: CacheStats::default(),
        }
    }

    /// A cache in an explicit mode, on a fresh private context.
    pub fn with_mode(mode: CacheMode) -> LinkGainCache {
        Self::with_ctx(&SimCtx::with_cache_mode(mode))
    }

    /// Operating mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Local activity counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The simulation context this cache records into.
    pub fn ctx(&self) -> &SimCtx {
        &self.ctx
    }

    /// Grow the generation vectors to cover device index `idx`.
    pub fn ensure_device(&mut self, idx: usize) {
        if idx >= self.pos_gen.len() {
            self.pos_gen.resize(idx + 1, 0);
            self.orient_gen.resize(idx + 1, 0);
        }
    }

    /// Device `idx` moved: its interned paths and every gain involving it
    /// are stale from now on. O(1) — staleness is detected lazily.
    pub fn bump_position(&mut self, idx: usize) {
        self.ensure_device(idx);
        self.pos_gen[idx] += 1;
        self.record_invalidation();
    }

    /// Device `idx` rotated in place: geometry (paths) stays valid, but
    /// pattern-weighted gains and resolved sample indices are stale. O(1).
    pub fn bump_orientation(&mut self, idx: usize) {
        self.ensure_device(idx);
        self.orient_gen[idx] += 1;
        self.record_invalidation();
    }

    /// Global flush: everything involving any known device becomes stale.
    /// Kept for scene-level changes (e.g. the environment itself changed);
    /// per-device bumps are preferred.
    pub fn invalidate_all(&mut self) {
        for g in &mut self.pos_gen {
            *g += 1;
        }
        for g in &mut self.orient_gen {
            *g += 1;
        }
        self.record_invalidation();
    }

    fn record_invalidation(&mut self) {
        self.stats.invalidations += 1;
        self.ctx.record_link_gain_invalidation();
    }

    /// Total linear pattern-weighted link gain from `src` (transmitting
    /// with `src_pattern`, identified by `src_pat`) to `dst` (receiving
    /// with `dst_pattern` / `dst_pat`). Returns `0.0` when no propagation
    /// path exists. Multiply by linear tx power and chain losses — or add
    /// their dB equivalents after `lin_to_db` — to get received power.
    #[allow(clippy::too_many_arguments)]
    pub fn link_gain_lin(
        &mut self,
        env: &Environment,
        src: &RadioNode,
        src_idx: usize,
        src_pat: PatId,
        src_pattern: &AntennaPattern,
        dst: &RadioNode,
        dst_idx: usize,
        dst_pat: PatId,
        dst_pattern: &AntennaPattern,
    ) -> f64 {
        self.link_gain_lin_db(
            env,
            src,
            src_idx,
            src_pat,
            src_pattern,
            dst,
            dst_idx,
            dst_pat,
            dst_pattern,
        )
        .0
    }

    /// [`Self::link_gain_lin`] plus its dB form (`NEG_INFINITY` for a dead
    /// link). The conversion is memoized with the gain entry, so the warm
    /// path costs no `log10` — the value is bit-identical to converting
    /// the linear gain fresh.
    #[allow(clippy::too_many_arguments)]
    pub fn link_gain_lin_db(
        &mut self,
        env: &Environment,
        src: &RadioNode,
        src_idx: usize,
        src_pat: PatId,
        src_pattern: &AntennaPattern,
        dst: &RadioNode,
        dst_idx: usize,
        dst_pat: PatId,
        dst_pattern: &AntennaPattern,
    ) -> (f64, f64) {
        debug_assert_ne!(src_idx, dst_idx, "self-link has no radiometric meaning");
        self.ensure_device(src_idx.max(dst_idx));
        let src_is_lo = src_idx < dst_idx;
        let (lo, hi) = if src_is_lo {
            (src_idx, dst_idx)
        } else {
            (dst_idx, src_idx)
        };
        let (lo_node, hi_node) = if src_is_lo { (src, dst) } else { (dst, src) };

        self.ensure_pair(env, lo, lo_node, hi, hi_node);

        let stamp: Stamp = (
            self.pos_gen[src_idx],
            self.orient_gen[src_idx],
            self.pos_gen[dst_idx],
            self.orient_gen[dst_idx],
        );
        let gkey = (src_idx, dst_idx, src_pat.0, dst_pat.0);
        let hit = match self.gains.get(&gkey) {
            Some(g) if g.stamp == stamp => {
                let (lin, db) = (g.lin, g.db);
                self.stats.gain_hits += 1;
                self.ctx.record_link_gain_hit();
                if self.mode == CacheMode::Cached {
                    return (lin, db);
                }
                // Bypass: fall through and recompute; the interned inputs
                // are identical, so a correct cache yields a bit-identical
                // value.
                true
            }
            _ => false,
        };
        if !hit {
            self.stats.gain_misses += 1;
            self.ctx.record_link_gain_miss();
        }

        let (lo_orient, hi_orient) = (self.orient_gen[lo], self.orient_gen[hi]);
        let entry = self.pairs.get_mut(&(lo, hi)).expect("pair interned above");
        let (lo_pat, hi_pat) = if src_is_lo {
            (src_pattern, dst_pattern)
        } else {
            (dst_pattern, src_pattern)
        };
        refresh_resolution(
            &mut entry.lo_res,
            &entry.paths,
            lo_node,
            lo_pat,
            lo_orient,
            Side::Lo,
        );
        refresh_resolution(
            &mut entry.hi_res,
            &entry.paths,
            hi_node,
            hi_pat,
            hi_orient,
            Side::Hi,
        );
        let (src_res, dst_res) = if src_is_lo {
            (&entry.lo_res, &entry.hi_res)
        } else {
            (&entry.hi_res, &entry.lo_res)
        };
        let lin = weighted_sum(&entry.paths, src_res, src_pattern, dst_res, dst_pattern);
        let db = if lin > 0.0 {
            lin_to_db(lin)
        } else {
            f64::NEG_INFINITY
        };

        self.gains.insert(gkey, GainEntry { stamp, lin, db });
        (lin, db)
    }

    /// Best sector pair between `a` and `b` sweeping both codebooks:
    /// `(a_sector, b_sector, gain_lin)` maximizing the linear link gain.
    /// The full table is memoized per unordered pair, so the reverse sweep
    /// and repeated retraining are lookups; ties resolve to the first cell
    /// in canonical (lower-index-major) scan order for both directions.
    #[allow(clippy::too_many_arguments)]
    pub fn best_sector_pair(
        &mut self,
        env: &Environment,
        a: &RadioNode,
        a_idx: usize,
        cb_a: &Codebook,
        b: &RadioNode,
        b_idx: usize,
        cb_b: &Codebook,
    ) -> (usize, usize, f64) {
        debug_assert_ne!(a_idx, b_idx, "self-link has no radiometric meaning");
        self.ensure_device(a_idx.max(b_idx));
        let a_is_lo = a_idx < b_idx;
        let (lo, hi) = if a_is_lo {
            (a_idx, b_idx)
        } else {
            (b_idx, a_idx)
        };
        let (lo_node, hi_node) = if a_is_lo { (a, b) } else { (b, a) };
        let (cb_lo, cb_hi) = if a_is_lo { (cb_a, cb_b) } else { (cb_b, cb_a) };

        self.ensure_pair(env, lo, lo_node, hi, hi_node);

        let stamp: Stamp = (
            self.pos_gen[lo],
            self.orient_gen[lo],
            self.pos_gen[hi],
            self.orient_gen[hi],
        );
        let hit = matches!(
            self.tables.get(&(lo, hi)),
            Some(t) if t.stamp == stamp && t.n_lo == cb_lo.len() && t.n_hi == cb_hi.len()
        );
        let best = if hit {
            self.stats.table_hits += 1;
            self.ctx.record_link_gain_hit();
            match self.mode {
                CacheMode::Cached => self.tables[&(lo, hi)].best,
                CacheMode::Bypass => {
                    self.build_table(lo, lo_node, cb_lo, hi, hi_node, cb_hi, stamp)
                        .best
                }
            }
        } else {
            self.stats.table_builds += 1;
            self.ctx.record_link_gain_miss();
            let table = self.build_table(lo, lo_node, cb_lo, hi, hi_node, cb_hi, stamp);
            let best = table.best;
            self.tables.insert((lo, hi), table);
            best
        };
        if a_is_lo {
            best
        } else {
            (best.1, best.0, best.2)
        }
    }

    /// Intern (or refresh) the path set of the canonical pair `(lo, hi)`.
    fn ensure_pair(
        &mut self,
        env: &Environment,
        lo: usize,
        lo_node: &RadioNode,
        hi: usize,
        hi_node: &RadioNode,
    ) {
        let (lo_pos, hi_pos) = (self.pos_gen[lo], self.pos_gen[hi]);
        let fresh = matches!(
            self.pairs.get(&(lo, hi)),
            Some(e) if e.lo_pos_gen == lo_pos && e.hi_pos_gen == hi_pos
        );
        if fresh {
            return;
        }
        let traced = env.paths(lo_node.position, hi_node.position);
        let mut paths = FoldedPaths::default();
        paths.base_lin.reserve_exact(traced.len());
        paths.lo_world.reserve_exact(traced.len());
        paths.hi_world.reserve_exact(traced.len());
        for p in traced.iter() {
            paths
                .base_lin
                .push(db_to_lin(-path_loss_db(env.budget.freq_hz, p)));
            paths.lo_world.push(p.departure);
            paths.hi_world.push(p.arrival);
        }
        self.stats.path_traces += 1;
        self.pairs.insert(
            (lo, hi),
            PairEntry {
                lo_pos_gen: lo_pos,
                hi_pos_gen: hi_pos,
                paths,
                lo_res: Resolved::default(),
                hi_res: Resolved::default(),
            },
        );
    }

    /// Build the full sector-pair table for the canonical pair `(lo, hi)`.
    #[allow(clippy::too_many_arguments)]
    fn build_table(
        &mut self,
        lo: usize,
        lo_node: &RadioNode,
        cb_lo: &Codebook,
        hi: usize,
        hi_node: &RadioNode,
        cb_hi: &Codebook,
        stamp: Stamp,
    ) -> TableEntry {
        let (lo_orient, hi_orient) = (self.orient_gen[lo], self.orient_gen[hi]);
        let entry = self.pairs.get_mut(&(lo, hi)).expect("pair interned above");
        let n_paths = entry.paths.len();
        // Resolve endpoint sample triples against the codebook's sample
        // count (all sectors of one codebook share a resolution).
        if !cb_lo.is_empty() {
            let pat = &cb_lo.sector(0).pattern;
            refresh_resolution(
                &mut entry.lo_res,
                &entry.paths,
                lo_node,
                pat,
                lo_orient,
                Side::Lo,
            );
        }
        if !cb_hi.is_empty() {
            let pat = &cb_hi.sector(0).pattern;
            refresh_resolution(
                &mut entry.hi_res,
                &entry.paths,
                hi_node,
                pat,
                hi_orient,
                Side::Hi,
            );
        }
        // Per-sector linear gains along each path, per endpoint.
        let g_lo = sector_gains(cb_lo, &entry.lo_res, lo_node, &entry.paths, Side::Lo);
        let g_hi = sector_gains(cb_hi, &entry.hi_res, hi_node, &entry.paths, Side::Hi);

        let (n_lo, n_hi) = (cb_lo.len(), cb_hi.len());
        let mut lin = vec![0.0; n_lo * n_hi];
        let mut best = (0usize, 0usize, f64::NEG_INFINITY);
        for s_lo in 0..n_lo {
            let gl = &g_lo[s_lo * n_paths..(s_lo + 1) * n_paths];
            for s_hi in 0..n_hi {
                let gh = &g_hi[s_hi * n_paths..(s_hi + 1) * n_paths];
                let mut sum = 0.0;
                for ((&base, &l), &h) in entry.paths.base_lin.iter().zip(gl).zip(gh) {
                    sum += base * l * h;
                }
                lin[s_lo * n_hi + s_hi] = sum;
                if sum > best.2 {
                    best = (s_lo, s_hi, sum);
                }
            }
        }
        if best.2 == f64::NEG_INFINITY {
            best = (0, 0, 0.0);
        }
        TableEntry {
            stamp,
            n_lo,
            n_hi,
            lin,
            best,
        }
    }

    /// The memoized sector-pair table (canonical orientation) if one is
    /// current for devices `(a_idx, b_idx)`; for inspection and tests.
    pub fn sector_table_lin(&self, a_idx: usize, b_idx: usize) -> Option<&[f64]> {
        let (lo, hi) = if a_idx < b_idx {
            (a_idx, b_idx)
        } else {
            (b_idx, a_idx)
        };
        self.tables.get(&(lo, hi)).map(|t| t.lin.as_slice())
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    Lo,
    Hi,
}

/// Refresh one endpoint's resolved sample triples if its orientation
/// generation or the pattern family's sample count changed.
fn refresh_resolution(
    res: &mut Resolved,
    paths: &FoldedPaths,
    node: &RadioNode,
    pattern: &AntennaPattern,
    orient_gen: u64,
    side: Side,
) {
    if res.orient_gen == orient_gen && res.n == pattern.len() && res.i0.len() == paths.len() {
        return;
    }
    res.i0.clear();
    res.i1.clear();
    res.frac.clear();
    for &world in paths.world(side) {
        let (i0, i1, frac) = pattern.sample_pos(node.to_local(world));
        res.i0.push(i0 as u32);
        res.i1.push(i1 as u32);
        res.frac.push(frac);
    }
    res.orient_gen = orient_gen;
    res.n = pattern.len();
}

/// Σ over paths of `base_lin · g_src · g_dst`, with both pattern gains
/// replayed from pre-resolved triples. The accumulation order (path 0, 1,
/// …) and the per-path product order match the original per-struct fold
/// exactly, so the sum is bit-identical.
fn weighted_sum(
    paths: &FoldedPaths,
    src_res: &Resolved,
    src_pattern: &AntennaPattern,
    dst_res: &Resolved,
    dst_pattern: &AntennaPattern,
) -> f64 {
    let mut sum = 0.0;
    for (i, &base) in paths.base_lin.iter().enumerate() {
        sum +=
            base * src_pattern.gain_lin_at(
                src_res.i0[i] as usize,
                src_res.i1[i] as usize,
                src_res.frac[i],
            ) * dst_pattern.gain_lin_at(
                dst_res.i0[i] as usize,
                dst_res.i1[i] as usize,
                dst_res.frac[i],
            );
    }
    sum
}

/// Linear gain of every sector of `cb` along every path, row-major
/// `[sector][path]`. Uses the endpoint's resolved triples when the sector
/// pattern matches their sample count, else falls back to a direct lookup.
fn sector_gains(
    cb: &Codebook,
    res: &Resolved,
    node: &RadioNode,
    paths: &FoldedPaths,
    side: Side,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(cb.len() * paths.len());
    for s in cb.sectors() {
        if s.pattern.len() == res.n {
            for i in 0..res.i0.len() {
                out.push(s.pattern.gain_lin_at(
                    res.i0[i] as usize,
                    res.i1[i] as usize,
                    res.frac[i],
                ));
            }
        } else {
            for &world in paths.world(side) {
                out.push(s.pattern.gain_lin(node.to_local(world)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_geom::{Angle, Point};
    use mmwave_phy::{lin_to_db, ArrayConfig, PhasedArray};

    fn scene() -> (Environment, Vec<RadioNode>) {
        let env = Environment::new(mmwave_geom::ConferenceRoom::new().room);
        let nodes = vec![
            RadioNode::new(0, "a", Point::new(1.0, 1.0), Angle::from_degrees(30.0)),
            RadioNode::new(1, "b", Point::new(5.0, 2.5), Angle::from_degrees(200.0)),
            RadioNode::new(2, "c", Point::new(3.0, 2.8), Angle::from_degrees(-90.0)),
        ];
        (env, nodes)
    }

    fn pat(gain: f64, width_deg: f64) -> AntennaPattern {
        AntennaPattern::from_fn(720, |a| {
            (gain - (a.distance(Angle::ZERO).to_degrees() / width_deg).powi(2)).max(-25.0)
        })
    }

    /// The unmemoized reference: re-trace and sum in the linear domain.
    fn brute_force(
        env: &Environment,
        src: &RadioNode,
        src_pattern: &AntennaPattern,
        dst: &RadioNode,
        dst_pattern: &AntennaPattern,
    ) -> f64 {
        env.paths(src.position, dst.position)
            .iter()
            .map(|p| {
                db_to_lin(-path_loss_db(env.budget.freq_hz, p))
                    * src_pattern.gain_lin(src.to_local(p.departure))
                    * dst_pattern.gain_lin(dst.to_local(p.arrival))
            })
            .sum()
    }

    #[test]
    fn matches_brute_force_both_directions() {
        let (env, nodes) = scene();
        let mut cache = LinkGainCache::with_mode(CacheMode::Cached);
        let pa = pat(18.0, 12.0);
        let pb = pat(14.0, 20.0);
        let fwd = cache.link_gain_lin(
            &env,
            &nodes[0],
            0,
            PatId(0),
            &pa,
            &nodes[1],
            1,
            PatId(1),
            &pb,
        );
        let rev = cache.link_gain_lin(
            &env,
            &nodes[1],
            1,
            PatId(1),
            &pb,
            &nodes[0],
            0,
            PatId(0),
            &pa,
        );
        let reference = brute_force(&env, &nodes[0], &pa, &nodes[1], &pb);
        assert!(
            (fwd / reference - 1.0).abs() < 1e-9,
            "fwd {fwd} ref {reference}"
        );
        // Reciprocity: the derived reverse view is the same physics.
        assert!((rev / fwd - 1.0).abs() < 1e-12, "rev {rev} fwd {fwd}");
        // And only one trace happened for the pair.
        assert_eq!(cache.stats().path_traces, 1);
    }

    #[test]
    fn second_lookup_is_a_hit_with_identical_value() {
        let (env, nodes) = scene();
        let mut cache = LinkGainCache::with_mode(CacheMode::Cached);
        let p = pat(16.0, 15.0);
        let q = pat(10.0, 30.0);
        let first =
            cache.link_gain_lin(&env, &nodes[0], 0, PatId(3), &p, &nodes[2], 2, PatId(7), &q);
        let second =
            cache.link_gain_lin(&env, &nodes[0], 0, PatId(3), &p, &nodes[2], 2, PatId(7), &q);
        assert_eq!(first.to_bits(), second.to_bits());
        let s = cache.stats();
        assert_eq!((s.gain_misses, s.gain_hits), (1, 1));
    }

    #[test]
    fn rotation_invalidates_only_touching_pairs_and_keeps_paths() {
        let (env, nodes) = scene();
        let mut cache = LinkGainCache::with_mode(CacheMode::Cached);
        let p = pat(16.0, 15.0);
        // Warm all three pairs.
        for (s, d) in [(0usize, 1usize), (0, 2), (1, 2)] {
            cache.link_gain_lin(&env, &nodes[s], s, PatId(0), &p, &nodes[d], d, PatId(0), &p);
        }
        assert_eq!(cache.stats().path_traces, 3);
        assert_eq!(cache.stats().gain_misses, 3);

        // Rotate device 0 in place.
        cache.bump_orientation(0);
        let mut rotated = nodes[0].clone();
        rotated.orientation = rotated.orientation + Angle::from_degrees(40.0);
        let before = cache.stats();
        let stale =
            cache.link_gain_lin(&env, &rotated, 0, PatId(0), &p, &nodes[1], 1, PatId(0), &p);
        cache.link_gain_lin(&env, &rotated, 0, PatId(0), &p, &nodes[2], 2, PatId(0), &p);
        let fresh_pair =
            cache.link_gain_lin(&env, &nodes[1], 1, PatId(0), &p, &nodes[2], 2, PatId(0), &p);
        let after = cache.stats();
        // Pairs touching device 0 recomputed; the (1,2) pair was a pure hit.
        assert_eq!(after.gain_misses - before.gain_misses, 2);
        assert_eq!(after.gain_hits - before.gain_hits, 1);
        // Rotation must never re-trace geometry.
        assert_eq!(after.path_traces, 3);
        // And the recomputed gain really reflects the new orientation.
        let reference = brute_force(&env, &rotated, &p, &nodes[1], &p);
        assert!((stale / reference - 1.0).abs() < 1e-9);
        let _ = fresh_pair;
    }

    #[test]
    fn move_invalidates_paths_of_touching_pairs_only() {
        let (env, nodes) = scene();
        let mut cache = LinkGainCache::with_mode(CacheMode::Cached);
        let p = pat(16.0, 15.0);
        for (s, d) in [(0usize, 1usize), (0, 2), (1, 2)] {
            cache.link_gain_lin(&env, &nodes[s], s, PatId(0), &p, &nodes[d], d, PatId(0), &p);
        }
        cache.bump_position(1);
        let mut moved = nodes[1].clone();
        moved.position = Point::new(5.8, 1.2);
        let gain = cache.link_gain_lin(&env, &nodes[0], 0, PatId(0), &p, &moved, 1, PatId(0), &p);
        cache.link_gain_lin(&env, &moved, 1, PatId(0), &p, &nodes[2], 2, PatId(0), &p);
        cache.link_gain_lin(&env, &nodes[0], 0, PatId(0), &p, &nodes[2], 2, PatId(0), &p);
        let s = cache.stats();
        // Two pairs re-traced ((0,1) and (1,2)); (0,2) untouched.
        assert_eq!(s.path_traces, 5);
        assert_eq!(s.gain_misses, 5);
        assert_eq!(s.gain_hits, 1);
        assert_eq!(s.invalidations, 1);
        let reference = brute_force(&env, &nodes[0], &p, &moved, &p);
        assert!((gain / reference - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bypass_mode_matches_cached_values_and_counters() {
        let (env, nodes) = scene();
        let p = pat(18.0, 10.0);
        let q = pat(12.0, 25.0);
        let run = |mode: CacheMode| {
            let mut cache = LinkGainCache::with_mode(mode);
            let mut out = Vec::new();
            for _ in 0..3 {
                out.push(cache.link_gain_lin(
                    &env,
                    &nodes[0],
                    0,
                    PatId(0),
                    &p,
                    &nodes[1],
                    1,
                    PatId(1),
                    &q,
                ));
            }
            cache.bump_orientation(1);
            let mut rot = nodes[1].clone();
            rot.orientation = rot.orientation + Angle::from_degrees(-15.0);
            out.push(cache.link_gain_lin(&env, &nodes[0], 0, PatId(0), &p, &rot, 1, PatId(1), &q));
            (out, cache.stats())
        };
        let (cached_vals, cached_stats) = run(CacheMode::Cached);
        let (bypass_vals, bypass_stats) = run(CacheMode::Bypass);
        for (c, b) in cached_vals.iter().zip(&bypass_vals) {
            assert_eq!(c.to_bits(), b.to_bits());
        }
        assert_eq!(cached_stats, bypass_stats);
    }

    #[test]
    fn sector_table_matches_exhaustive_sweep_both_directions() {
        let (env, nodes) = scene();
        let cb_ctx = SimCtx::new();
        let array = PhasedArray::new(ArrayConfig::wigig_2x8(16));
        let cb_a = Codebook::directional(&cb_ctx, &array, 12, 60f64.to_radians());
        let array_b = PhasedArray::new(ArrayConfig::wigig_2x8(111));
        let cb_b = Codebook::directional(&cb_ctx, &array_b, 9, 50f64.to_radians());

        let mut cache = LinkGainCache::with_mode(CacheMode::Cached);
        let (sa, sb, lin) = cache.best_sector_pair(&env, &nodes[0], 0, &cb_a, &nodes[1], 1, &cb_b);

        // Exhaustive unmemoized sweep.
        let mut best = (0usize, 0usize, f64::NEG_INFINITY);
        for i in 0..cb_a.len() {
            for j in 0..cb_b.len() {
                let g = brute_force(
                    &env,
                    &nodes[0],
                    &cb_a.sector(i).pattern,
                    &nodes[1],
                    &cb_b.sector(j).pattern,
                );
                if g > best.2 {
                    best = (i, j, g);
                }
            }
        }
        assert_eq!((sa, sb), (best.0, best.1));
        assert!((lin / best.2 - 1.0).abs() < 1e-9);

        // The reverse sweep is a table hit with swapped sectors.
        let before = cache.stats();
        let (sb2, sa2, lin2) =
            cache.best_sector_pair(&env, &nodes[1], 1, &cb_b, &nodes[0], 0, &cb_a);
        let after = cache.stats();
        assert_eq!((sa2, sb2), (sa, sb));
        assert_eq!(lin2.to_bits(), lin.to_bits());
        assert_eq!(after.table_hits - before.table_hits, 1);
        assert_eq!(after.table_builds, 1);
    }

    #[test]
    fn sector_table_rebuilds_after_rotation() {
        let (env, nodes) = scene();
        let array = PhasedArray::new(ArrayConfig::wigig_2x8(16));
        let cb = Codebook::directional_default(&SimCtx::new(), &array);
        let mut cache = LinkGainCache::with_mode(CacheMode::Cached);
        let first = cache.best_sector_pair(&env, &nodes[0], 0, &cb, &nodes[1], 1, &cb);
        cache.bump_orientation(0);
        let mut rot = nodes[0].clone();
        rot.orientation = rot.orientation + Angle::from_degrees(70.0);
        let second = cache.best_sector_pair(&env, &rot, 0, &cb, &nodes[1], 1, &cb);
        assert_eq!(cache.stats().table_builds, 2);
        // A 70° twist steers the chosen sector away from the old one.
        assert_ne!(first.0, second.0);
        // But geometry was never re-traced.
        assert_eq!(cache.stats().path_traces, 1);
    }

    #[test]
    fn mode_comes_from_the_construction_context() {
        assert_eq!(LinkGainCache::new().mode(), CacheMode::Cached);
        let bypass_ctx = SimCtx::with_cache_mode(CacheMode::Bypass);
        assert_eq!(
            LinkGainCache::with_ctx(&bypass_ctx).mode(),
            CacheMode::Bypass
        );
        assert_eq!(
            LinkGainCache::with_mode(CacheMode::Bypass).mode(),
            CacheMode::Bypass
        );
    }

    #[test]
    fn cache_counters_stream_into_the_construction_context() {
        let (env, nodes) = scene();
        let ctx = SimCtx::new();
        let mut cache = LinkGainCache::with_ctx(&ctx);
        let p = pat(16.0, 15.0);
        for _ in 0..2 {
            cache.link_gain_lin(&env, &nodes[0], 0, PatId(0), &p, &nodes[1], 1, PatId(0), &p);
        }
        cache.bump_orientation(0);
        let c = ctx.counters();
        assert_eq!(c.link_gain_misses, 1);
        assert_eq!(c.link_gain_hits, 1);
        assert_eq!(c.link_gain_invalidations, 1);
    }

    #[test]
    fn short_link_has_positive_but_sub_unity_gain() {
        let (env, _) = scene();
        let a = RadioNode::new(0, "a", Point::new(1.0, 1.0), Angle::ZERO);
        let b = RadioNode::new(1, "b", Point::new(2.0, 1.0), Angle::ZERO);
        let p = AntennaPattern::isotropic(0.0);
        let mut cache = LinkGainCache::with_mode(CacheMode::Cached);
        let g = cache.link_gain_lin(&env, &a, 0, PatId(0), &p, &b, 1, PatId(0), &p);
        assert!(g > 0.0);
        assert!(
            lin_to_db(g) < 0.0,
            "a 1 m 60 GHz link has negative net gain"
        );
    }
}
