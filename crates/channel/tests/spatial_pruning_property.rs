//! Property test: the spatial coupling bound never prunes a pair that
//! actually couples above the floor (no false negatives).
//!
//! Randomized 50-device layouts drive both prune criteria:
//!
//! * **Distance**: for every pair separated by more than
//!   `cutoff_distance_m`, the brute-force coupling (full `link_state`
//!   through the ray tracer, with the worst admissible power offset added)
//!   must sit below the configured floor — and below the analytic bound at
//!   that distance, which itself must sit below the floor.
//! * **Closed zones**: devices in different closed rooms must have *zero*
//!   coupling (no surviving path at all), which is why cross-zone pairs
//!   may be pruned at any distance.

use mmwave_channel::{
    coupling_bound_dbm, cutoff_distance_m, link_state, Environment, RadioNode, SpatialConfig,
    SpatialIndex,
};
use mmwave_geom::{shared_tree, Angle, Material, Point, Room, Segment};
use mmwave_phy::AntennaPattern;
use mmwave_sim::rng::SimRng;

fn uniform(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    lo + (hi - lo) * u
}

/// A random pattern whose peak gain respects `cfg.max_gain_dbi`.
fn random_pattern(rng: &mut SimRng, cfg: &SpatialConfig) -> AntennaPattern {
    AntennaPattern::isotropic(uniform(rng, 0.0, cfg.max_gain_dbi))
}

#[test]
fn pruned_distance_pairs_are_below_the_floor() {
    // A bound tight enough to yield a sub-200 m cutoff: modest gains and
    // the margin spent explicitly below as a worst-case power offset.
    let cfg = SpatialConfig {
        floor_dbm: -90.0,
        max_gain_dbi: 6.0,
        margin_db: 3.0,
    };
    for seed in 0..8u64 {
        let mut rng = SimRng::root(0x59A7_1A10 + seed);
        let mut room = Room::open_space();
        // Sparse random reflectors scattered over the field.
        for i in 0..6 {
            let a = Point::new(
                uniform(&mut rng, -300.0, 300.0),
                uniform(&mut rng, -300.0, 300.0),
            );
            let b = a + mmwave_geom::Vec2::new(
                uniform(&mut rng, -8.0, 8.0),
                uniform(&mut rng, -8.0, 8.0),
            );
            if a.distance(b) < 0.5 {
                continue;
            }
            let mat = [Material::Metal, Material::Glass, Material::Brick][i % 3];
            room.add_obstacle(Segment::new(a, b), mat, format!("r{i}"));
        }
        let env = Environment::new(room);
        let cutoff = cutoff_distance_m(&env, &cfg);
        assert!(
            cutoff < 500.0,
            "cutoff {cutoff} too large for this layout to exercise pruning"
        );
        let n_mirrors = shared_tree(&env.room, &env.trace).node_count();

        let mut index = SpatialIndex::new(cutoff);
        let devices: Vec<(RadioNode, AntennaPattern)> = (0..50)
            .map(|i| {
                let p = Point::new(
                    uniform(&mut rng, -400.0, 400.0),
                    uniform(&mut rng, -400.0, 400.0),
                );
                index.set_position(i, p);
                (
                    RadioNode::new(
                        i,
                        format!("n{i}"),
                        p,
                        Angle::from_degrees(uniform(&mut rng, 0.0, 360.0)),
                    ),
                    random_pattern(&mut rng, &cfg),
                )
            })
            .collect();

        let mut pruned_pairs = 0usize;
        for i in 0..devices.len() {
            for j in (i + 1)..devices.len() {
                let (a, pa) = &devices[i];
                let (b, pb) = &devices[j];
                let d = a.position.distance(b.position);
                if index.coupled(a.position, b.position) {
                    continue; // not pruned: no claim to check
                }
                pruned_pairs += 1;
                // Brute force through the full tracer, charging the worst
                // admissible per-device offset (the margin) on top.
                let brute = link_state(&env, a, pa, b, pb).total_dbm + cfg.margin_db;
                let bound = coupling_bound_dbm(&env, &cfg, n_mirrors, d);
                assert!(
                    bound < cfg.floor_dbm,
                    "seed {seed}: pair ({i},{j}) at {d:.1} m pruned with bound {bound:.1} above floor"
                );
                assert!(
                    brute <= bound,
                    "seed {seed}: pair ({i},{j}) at {d:.1} m couples at {brute:.1} dBm, above bound {bound:.1}"
                );
            }
        }
        assert!(
            pruned_pairs > 50,
            "seed {seed}: only {pruned_pairs} pruned pairs — layout too dense to test anything"
        );
    }
}

#[test]
fn cross_zone_pairs_have_exactly_zero_coupling() {
    for seed in 0..6u64 {
        let mut rng = SimRng::root(0x59A7_2B20 + seed);
        let mut room = Room::open_space();
        let mut zones = Vec::new();
        // A row of closed brick rooms with random footprints.
        let mut x0 = 0.0;
        for r in 0..5 {
            let w = uniform(&mut rng, 3.0, 6.0);
            let h = uniform(&mut rng, 2.5, 4.0);
            let corners = [
                (Point::new(x0, 0.0), Point::new(x0 + w, 0.0)),
                (Point::new(x0 + w, 0.0), Point::new(x0 + w, h)),
                (Point::new(x0 + w, h), Point::new(x0, h)),
                (Point::new(x0, h), Point::new(x0, 0.0)),
            ];
            for (i, (a, b)) in corners.into_iter().enumerate() {
                room.add_obstacle(Segment::new(a, b), Material::Brick, format!("z{r}-{i}"));
            }
            zones.push((
                room.add_zone(Point::new(x0, 0.0), Point::new(x0 + w, h)),
                x0,
                w,
                h,
            ));
            x0 += w + uniform(&mut rng, 0.5, 2.0);
        }
        let env = Environment::new(room);

        // 50 devices spread across the rooms.
        let devices: Vec<(usize, RadioNode, AntennaPattern)> = (0..50)
            .map(|i| {
                let &(z, zx, zw, zh) = &zones[(rng.next_u64() as usize) % zones.len()];
                let p = Point::new(
                    uniform(&mut rng, zx + 0.2, zx + zw - 0.2),
                    uniform(&mut rng, 0.2, zh - 0.2),
                );
                let node = RadioNode::new(
                    i,
                    format!("d{i}"),
                    p,
                    Angle::from_degrees(uniform(&mut rng, 0.0, 360.0)),
                );
                (
                    z,
                    node,
                    AntennaPattern::isotropic(uniform(&mut rng, 0.0, 20.0)),
                )
            })
            .collect();

        let mut cross = 0usize;
        for i in 0..devices.len() {
            for j in (i + 1)..devices.len() {
                let (za, a, pa) = &devices[i];
                let (zb, b, pb) = &devices[j];
                if za == zb {
                    continue;
                }
                cross += 1;
                let state = link_state(&env, a, pa, b, pb);
                assert!(
                    state.paths.is_empty(),
                    "seed {seed}: cross-zone pair ({i},{j}) has {} surviving paths",
                    state.paths.len()
                );
                assert_eq!(state.total_dbm, -300.0, "seed {seed}: pair ({i},{j})");
            }
        }
        assert!(cross > 100, "seed {seed}: only {cross} cross-zone pairs");
    }
}
