#!/usr/bin/env bash
# Bench regression gate: run the kernel registry into a scratch file and
# compare every median against the committed BENCH_kernels.json baseline.
#
#   scripts/bench_check.sh                    # gate at the default +100%
#   BENCH_TOLERANCE=0.5 scripts/bench_check.sh  # tighter band
#
# Re-baselining (after an intentional perf change): run
#   cargo bench -p mmwave-bench --bench kernels
# on an idle machine — it rewrites BENCH_kernels.json at the repo root —
# and commit the refreshed file with the change that moved the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

scratch="$(mktemp "${TMPDIR:-/tmp}/bench_current.XXXXXX.json")"
trap 'rm -f "$scratch"' EXIT

echo "==> cargo bench -p mmwave-bench --bench kernels (fresh run)"
BENCH_OUT="$scratch" cargo bench -p mmwave-bench --bench kernels

echo "==> comparing against committed BENCH_kernels.json"
cargo run -q --release -p mmwave-bench --bin bench_check -- \
    BENCH_kernels.json "$scratch"
