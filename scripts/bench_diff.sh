#!/usr/bin/env bash
# Tabulate kernel medians across two bench trajectory files:
#
#   scripts/bench_diff.sh OLD.json NEW.json
#
# Typical use: compare the committed baseline against a fresh run
# before re-baselining —
#
#   git show HEAD:BENCH_kernels.json > /tmp/old.json
#   BENCH_OUT=/tmp/new.json cargo bench -p mmwave-bench --bench kernels
#   scripts/bench_diff.sh /tmp/old.json /tmp/new.json
#
# Caveat (see DESIGN.md § "SoA kernels & batched synthesis"): the two
# files were usually produced in different machine phases, so the ratio
# column mixes code changes with host clock drift. For speedup *claims*
# prefer the same-phase `*_reference` rows inside one run; this table is
# for spotting which kernels moved, not for quoting.
set -euo pipefail

if [[ $# -ne 2 ]]; then
    echo "usage: $0 OLD.json NEW.json" >&2
    exit 2
fi
old="$1"
new="$2"
[[ -r "$old" ]] || { echo "bench_diff: cannot read $old" >&2; exit 2; }
[[ -r "$new" ]] || { echo "bench_diff: cannot read $new" >&2; exit 2; }

# The trajectory files are hand-rolled JSON with one result object per
# line, so a grep/sed pipeline extracts (name, median) robustly.
extract() {
    grep -o '"name": "[^"]*"[^}]*"median_ns": [0-9.]*' "$1" \
        | sed -E 's/^"name": "([^"]*)".*"median_ns": ([0-9.]+)$/\1\t\2/'
}

awk -F'\t' '
    NR == FNR { old[$1] = $2; next }
    {
        seen[$1] = 1
        if ($1 in old) {
            ratio = old[$1] > 0 ? $2 / old[$1] : 0
            printf "%-46s %12.1f %12.1f %9.2fx\n", $1, old[$1], $2, ratio
        } else {
            printf "%-46s %12s %12.1f %10s\n", $1, "-", $2, "new"
        }
    }
    END {
        for (k in old) {
            if (!(k in seen)) {
                printf "%-46s %12.1f %12s %10s\n", k, old[k], "-", "removed"
            }
        }
    }
' <(extract "$old") <(extract "$new") | {
    printf "%-46s %12s %12s %10s\n" "kernel" "old med ns" "new med ns" "new/old"
    sort
}
