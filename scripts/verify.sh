#!/usr/bin/env bash
# One-shot local verification: exactly what a PR must keep green.
#
#   scripts/verify.sh            # build + full test suite + formatting
#
# Mirrors the tier-1 gate in ROADMAP.md (release build + workspace
# tests) and adds the formatting check so style drift is caught before
# review. Std-only: no network, no external tools beyond cargo/rustfmt.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
