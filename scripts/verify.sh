#!/usr/bin/env bash
# One-shot local verification: exactly what a PR must keep green.
#
#   scripts/verify.sh            # build + full test suite + formatting
#   SKIP_BENCH=1 scripts/verify.sh  # skip the bench regression gate
#
# Mirrors the tier-1 gate in ROADMAP.md (release build + workspace
# tests) and adds the formatting check so style drift is caught before
# review, plus the kernel-bench regression gate (scripts/bench_check.sh)
# so perf cliffs are caught alongside correctness. Std-only: no network,
# no external tools beyond cargo/rustfmt.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> queue backend equivalence suite"
# The timer-wheel scheduler must be indistinguishable from the
# reference BinaryHeap: identical pop sequences and counters under
# randomized schedule/cancel/pop scripts.
cargo test -q --release -p mmwave-sim --test queue_equivalence

echo "==> image-tree equivalence suite"
# The shared image tree must reproduce the reference per-pair mirror
# enumeration bit-for-bit across randomized rooms and endpoints.
cargo test -q --release -p mmwave-geom --test image_tree_equivalence

echo "==> spatial pruning suites"
# The interference graph's soundness (pruned pairs provably below the
# coupling floor) and its byte-invisibility in campaign artifacts
# (enforce vs audit mode over a matrix including `enterprise`).
cargo test -q --release -p mmwave-channel --test spatial_pruning_property
cargo test -q --release -p mmwave-campaign --test spatial_equivalence

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> forbidden-pattern gate (ambient state)"
# All per-run state must live in mmwave_sim::ctx::SimCtx. Thread-locals
# and mutable statics reintroduce the cross-task bleed the context
# refactor removed, so they are banned outside the context module
# itself and test code.
violations=$(grep -rn 'thread_local!\|static mut' crates/ --include='*.rs' \
    | grep -v '^crates/sim/src/ctx.rs:' \
    | grep -v '/tests/' \
    | grep -vE ':[0-9]+:\s*//' || true)
if [[ -n "$violations" ]]; then
    echo "forbidden ambient-state pattern found (use SimCtx instead):"
    echo "$violations"
    exit 1
fi

echo "==> forbidden-pattern gate (ad-hoc event queues)"
# All event scheduling in the engines goes through
# mmwave_sim::queue::EventQueue (timer-wheel backed, heap-verified). A
# BinaryHeap reappearing in the MAC or transport crates means a
# datapath grew its own scheduler around the abstraction — and with it
# its own tie-break rules, cancellation semantics, and counters.
violations=$(grep -rn 'BinaryHeap' crates/transport crates/mac --include='*.rs' \
    | grep -vE ':[0-9]+:\s*//' || true)
if [[ -n "$violations" ]]; then
    echo "BinaryHeap found outside mmwave_sim::queue (use EventQueue instead):"
    echo "$violations"
    exit 1
fi

echo "==> forbidden-pattern gate (congestion math in the datapath)"
# Congestion control lives in mmwave_transport::cc behind CongestionAlg.
# The datapath (tcp.rs) only *detects* loss and applies ControlPatterns;
# any cwnd/ssthresh arithmetic reappearing there means algorithm logic
# leaked back inline.
violations=$(grep -nE 'ssthresh|cwnd[[:space:]]*(\+=|-=|\*=|/=|= )' \
    crates/transport/src/tcp.rs \
    | grep -vE '^[0-9]+:\s*//' || true)
if [[ -n "$violations" ]]; then
    echo "congestion-window arithmetic found in the datapath (move it into crates/transport/src/cc/):"
    echo "$violations"
    exit 1
fi

echo "==> cc_compare quick experiment"
# The congestion plane's end-to-end check: loss-based and rate-based
# algorithms must diverge through a blockage transient.
cargo run --release -q -p mmwave-campaign --bin experiments -- --quick cc_compare

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
    echo "==> scripts/bench_check.sh"
    scripts/bench_check.sh
fi

echo "verify: OK"
