#!/usr/bin/env bash
# One-shot local verification: exactly what a PR must keep green.
#
#   scripts/verify.sh            # build + full test suite + formatting
#   SKIP_BENCH=1 scripts/verify.sh  # skip the bench regression gate
#
# Mirrors the tier-1 gate in ROADMAP.md (release build + workspace
# tests) and adds the formatting check so style drift is caught before
# review, plus the kernel-bench regression gate (scripts/bench_check.sh)
# so perf cliffs are caught alongside correctness. Std-only: no network,
# no external tools beyond cargo/rustfmt.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> queue backend equivalence suite"
# The timer-wheel scheduler must be indistinguishable from the
# reference BinaryHeap: identical pop sequences and counters under
# randomized schedule/cancel/pop scripts.
cargo test -q --release -p mmwave-sim --test queue_equivalence

echo "==> image-tree equivalence suite"
# The shared image tree must reproduce the reference per-pair mirror
# enumeration bit-for-bit across randomized rooms and endpoints.
cargo test -q --release -p mmwave-geom --test image_tree_equivalence

echo "==> spatial pruning suites"
# The interference graph's soundness (pruned pairs provably below the
# coupling floor) and its byte-invisibility in campaign artifacts
# (enforce vs audit mode over a matrix including `enterprise`).
cargo test -q --release -p mmwave-channel --test spatial_pruning_property
cargo test -q --release -p mmwave-campaign --test spatial_equivalence

echo "==> campaign control-plane suites"
# The worker wire protocol smoked against the real `campaign worker`
# subprocess, crash-recovery resume (damaged chunks / torn manifest →
# only the damaged tasks re-execute), and the sharded-vs-in-process
# equivalence: `--workers N` must emit the same artifact bytes as the
# in-process pool.
cargo test -q --release -p mmwave-campaign --test worker_protocol
cargo test -q --release -p mmwave-campaign --test resume
cargo test -q --release -p mmwave-campaign --test process_equivalence

echo "==> SoA kernel equivalence suites"
# Every SoA/chunked hot path must reproduce its retained scalar
# reference bit-for-bit: pattern synthesis (basis + buffer-reuse +
# batched rows), scope-trace sampling/detection, and ray clearance.
cargo test -q --release -p mmwave-phy --test basis_equivalence
cargo test -q --release -p mmwave-phy --test soa_equivalence
cargo test -q --release -p mmwave-capture --test properties
cargo test -q --release -p mmwave-geom --test image_tree_equivalence

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> forbidden-pattern gate (ambient state)"
# All per-run state must live in mmwave_sim::ctx::SimCtx. Thread-locals
# and mutable statics reintroduce the cross-task bleed the context
# refactor removed, so they are banned outside the context module
# itself and test code.
violations=$(grep -rn 'thread_local!\|static mut' crates/ --include='*.rs' \
    | grep -v '^crates/sim/src/ctx.rs:' \
    | grep -v '/tests/' \
    | grep -vE ':[0-9]+:\s*//' || true)
if [[ -n "$violations" ]]; then
    echo "forbidden ambient-state pattern found (use SimCtx instead):"
    echo "$violations"
    exit 1
fi

echo "==> forbidden-pattern gate (ad-hoc event queues)"
# All event scheduling in the engines goes through
# mmwave_sim::queue::EventQueue (timer-wheel backed, heap-verified). A
# BinaryHeap reappearing in the MAC or transport crates means a
# datapath grew its own scheduler around the abstraction — and with it
# its own tie-break rules, cancellation semantics, and counters.
violations=$(grep -rn 'BinaryHeap' crates/transport crates/mac --include='*.rs' \
    | grep -vE ':[0-9]+:\s*//' || true)
if [[ -n "$violations" ]]; then
    echo "BinaryHeap found outside mmwave_sim::queue (use EventQueue instead):"
    echo "$violations"
    exit 1
fi

echo "==> forbidden-pattern gate (congestion math in the datapath)"
# Congestion control lives in mmwave_transport::cc behind CongestionAlg.
# The datapath (tcp.rs) only *detects* loss and applies ControlPatterns;
# any cwnd/ssthresh arithmetic reappearing there means algorithm logic
# leaked back inline.
violations=$(grep -nE 'ssthresh|cwnd[[:space:]]*(\+=|-=|\*=|/=|= )' \
    crates/transport/src/tcp.rs \
    | grep -vE '^[0-9]+:\s*//' || true)
if [[ -n "$violations" ]]; then
    echo "congestion-window arithmetic found in the datapath (move it into crates/transport/src/cc/):"
    echo "$violations"
    exit 1
fi

echo "==> forbidden-pattern gate (allocation in hot-loop kernels)"
# The steady-state bodies of the SoA kernels are allocation-free by
# contract (the bench harness hard-asserts allocs_per_iter == 0 for
# their warm benches). Ban the two literal allocation idioms inside the
# named function bodies so a heap call cannot creep in between bench
# runs. Setup/cold-path functions (pattern_from_weights,
# patterns_from_weight_rows, detect_frames, trace_paths, ...) allocate
# their outputs by design and are deliberately not listed.
check_no_alloc() {
    local file="$1" fname="$2" body hits
    body=$(awk -v fn="$fname" '
        $0 ~ "fn " fn "[ (<]" { infn = 1 }
        infn {
            print
            n = gsub(/{/, "{"); m = gsub(/}/, "}")
            depth += n - m
            if (n > 0) started = 1
            if (started && depth <= 0) exit
        }
    ' "$file")
    if [[ -z "$body" ]]; then
        echo "hot-loop allocation gate: fn $fname not found in $file"
        exit 1
    fi
    hits=$(grep -n 'Vec::new()\|vec!\[' <<<"$body" | grep -vE '^\s*//' \
        | grep -vE '^[0-9]+:\s*//' || true)
    if [[ -n "$hits" ]]; then
        echo "allocation idiom in hot-loop fn $fname ($file) — use caller-provided scratch:"
        echo "$hits"
        exit 1
    fi
}
check_no_alloc crates/phy/src/array.rs synth_rows_into
check_no_alloc crates/phy/src/array.rs fold_rows
check_no_alloc crates/phy/src/array.rs pattern_samples_into
check_no_alloc crates/capture/src/trace.rs sample_into
check_no_alloc crates/geom/src/raytrace.rs leg_is_clear
check_no_alloc crates/geom/src/raytrace.rs legs_clear_fast
check_no_alloc crates/channel/src/linkgain.rs weighted_sum

echo "==> cc_compare quick experiment"
# The congestion plane's end-to-end check: loss-based and rate-based
# algorithms must diverge through a blockage transient.
cargo run --release -q -p mmwave-campaign --bin experiments -- --quick cc_compare

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
    echo "==> scripts/bench_check.sh"
    scripts/bench_check.sh
fi

echo "verify: OK"
