//! Quickstart: bring up a WiGig dock↔laptop link, run an Iperf-style TCP
//! flow over it, and look at what the frame-level analysis sees.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mmwave_channel::Environment;
use mmwave_core::analysis::frame_level;
use mmwave_geom::{Angle, Point, Room};
use mmwave_mac::{Device, Net, NetConfig};
use mmwave_sim::time::{SimDuration, SimTime};
use mmwave_transport::{Stack, TcpConfig};

fn main() {
    // 1. An open-space environment and two devices 2 m apart.
    let env = Environment::new(Room::open_space());
    let mut net = Net::new(
        env,
        NetConfig {
            seed: 42,
            ..NetConfig::default()
        },
    );
    let dock = net.add_device(Device::wigig_dock(
        net.ctx(),
        "Dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        13, // canonical array seed
    ));
    let laptop = net.add_device(Device::wigig_laptop(
        net.ctx(),
        "Laptop",
        Point::new(2.0, 0.0),
        Angle::from_degrees(180.0),
        11,
    ));

    // 2. Associate (beam training happens inside) and report the link.
    net.associate_instantly(dock, laptop);
    let w = net.device(dock).wigig().expect("wigig device");
    println!(
        "link up: dock sector {} (steering {}), PHY rate {}",
        w.tx_sector,
        w.codebook.sector(w.tx_sector).steer,
        w.adapter.current().label(),
    );

    // 3. An Iperf-style bulk TCP flow with a 256 KiB window for 2 s.
    let mut stack = Stack::new(net);
    let flow = stack.add_flow(TcpConfig::bulk(dock, laptop, 256 * 1024));
    stack.run_until(SimTime::from_secs(2));

    let goodput = stack
        .flow_stats(flow)
        .mean_goodput_mbps(SimTime::from_millis(300), SimTime::from_secs(2));
    println!("TCP goodput: {goodput:.0} Mb/s (Gigabit-Ethernet limited, as in the paper)");

    // 4. Frame-level view: the same numbers the paper's Figs. 9–11 report.
    let net = &stack.net;
    let mut cdf =
        frame_level::frame_length_cdf(net, dock, SimTime::from_millis(300), SimTime::from_secs(2));
    println!(
        "data frames: {} | median {:.1} µs | max {:.1} µs | >5 µs (aggregated): {:.0}%",
        cdf.len(),
        cdf.median(),
        cdf.max(),
        frame_level::long_frame_fraction(
            net,
            dock,
            SimTime::from_millis(300),
            SimTime::from_secs(2),
            6.0
        ) * 100.0
    );
    let usage = frame_level::medium_usage(
        net,
        SimTime::from_millis(300),
        SimTime::from_secs(2),
        SimDuration::from_millis(1),
    );
    println!(
        "medium usage (1 ms capture windows with data): {:.0}%",
        usage * 100.0
    );
    let st = net.device(dock).stats;
    println!(
        "MAC: {} data PPDUs, {} retransmissions, {} CS deferrals",
        st.data_tx, st.data_retx, st.cs_defers
    );
}
