//! Reflections in the paper's conference room (Fig. 4): stand at any of
//! the six probe positions with a rotating horn and see where the energy
//! of an active link actually comes from — including the wall bounces the
//! textbook 60 GHz picture says shouldn't matter.
//!
//! ```text
//! cargo run --example conference_room [probe-letter]
//! ```

use mmwave_core::analysis::reflections::{
    expected_directions, measure_profile, unattributed_lobes,
};
use mmwave_core::report;
use mmwave_core::scenarios::{reflection_room, RoomSystem};
use mmwave_mac::NetConfig;
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::time::{SimDuration, SimTime};

fn main() {
    let letter = std::env::args()
        .nth(1)
        .and_then(|s| s.chars().next())
        .unwrap_or('A')
        .to_ascii_uppercase();

    let mut r = reflection_room(
        &SimCtx::new(),
        RoomSystem::Wigig,
        NetConfig {
            seed: 4,
            enable_fading: false,
            ..NetConfig::default()
        },
    );
    println!(
        "conference room 9 m × 3.25 m (wood / brick / glass walls), {} → {} link",
        r.net.device(r.tx).node.label,
        r.net.device(r.rx).node.label
    );

    // Load the link so the rotation scan has data frames to average.
    let horizon = SimTime::from_millis(60);
    let mut i = 0;
    while r.net.now() < horizon {
        for _ in 0..20 {
            r.net.push_mpdu(r.tx, 1500, i);
            i += 1;
        }
        let t = r.net.now();
        r.net.run_until(t + SimDuration::from_micros(400));
    }

    let probe = r.layout.probe(letter);
    println!("rotation scan at probe {letter} = {probe}\n");
    let profile = measure_profile(&r.net, probe, 120, SimTime::ZERO, horizon);
    println!(
        "{}",
        report::polar(
            &format!("angular profile at {letter}"),
            &profile.normalized_db()
        )
    );

    let exp = expected_directions(&r.net, probe, r.tx, r.rx);
    println!(
        "expected device directions: TX at {}, RX at {}",
        exp.toward_tx, exp.toward_rx
    );
    let reflections = unattributed_lobes(&profile, &exp, 16f64.to_radians(), 1.0, 12.0);
    if reflections.is_empty() {
        println!("no reflection lobes above the −12 dB window at this probe");
    } else {
        for d in &reflections {
            println!(
                "reflection lobe from {} — points at a wall, not a device (§4.3's evidence)",
                d
            );
        }
    }
}
