//! Explore the synthesized consumer-grade beam patterns: the directional
//! sector fan, the 32 quasi-omni discovery patterns, and the ablation the
//! paper's §5 design discussion begs for — what finer phase shifters would
//! have bought.
//!
//! ```text
//! cargo run --example beam_explorer
//! ```

use mmwave_geom::Angle;
use mmwave_phy::{ArrayConfig, Codebook, PhaseShifter, PhasedArray};
use mmwave_sim::ctx::SimCtx;

fn main() {
    let array = PhasedArray::new(ArrayConfig::wigig_2x8(13));
    let ctx = SimCtx::new();

    println!("== directional codebook (32 sectors over ±77.5°) ==");
    let cb = Codebook::directional_default(&ctx, &array);
    println!(
        "{:>6}  {:>8}  {:>9}  {:>7}  {:>6}",
        "sector", "steer", "peak dBi", "HPBW", "SLL"
    );
    for s in cb.sectors().iter().step_by(4) {
        let peak = s.pattern.peak();
        println!(
            "{:>6}  {:>8}  {:>9.1}  {:>6.1}°  {:>5.1}",
            s.id,
            format!("{}", s.steer),
            peak.gain_dbi,
            s.pattern.hpbw().to_degrees(),
            s.pattern.side_lobe_level_db().unwrap_or(f64::NAN),
        );
    }

    println!("\n== quasi-omni discovery codebook (Fig. 16's patterns) ==");
    let qo = Codebook::quasi_omni_32(&ctx, &array);
    let mut gaps_total = 0;
    for s in qo.sectors().iter().take(6) {
        let gaps = s.pattern.gaps(90f64.to_radians(), 6.0);
        gaps_total += gaps.len();
        println!(
            "entry {:>2}: HPBW {:>5.1}°, peak {:>5.1} dBi, {} deep gaps",
            s.id,
            s.pattern.hpbw().to_degrees(),
            s.pattern.peak().gain_dbi,
            gaps.len()
        );
    }
    println!("(first 6 entries shown; {gaps_total} deep gaps among them)");

    println!("\n== ablation: phase-shifter resolution vs side lobes ==");
    println!("the paper blames cost-effective hardware for the −4…−6 dB side");
    println!("lobes; here is what better shifters would have bought:");
    println!(
        "{:>5}  {:>12}  {:>14}",
        "bits", "SLL @ 0°", "SLL @ 60° steer"
    );
    for bits in 1..=6u8 {
        let mut cfg = ArrayConfig::wigig_2x8(13);
        cfg.shifter = PhaseShifter::new(bits);
        cfg.amp_error_db = 0.0;
        cfg.phase_error_rad = 0.0;
        let arr = PhasedArray::new(cfg);
        let sll0 = arr
            .steered_pattern(Angle::ZERO)
            .side_lobe_level_db()
            .unwrap_or(f64::NAN);
        let sll60 = arr
            .steered_pattern(Angle::from_degrees(60.0))
            .side_lobe_level_db()
            .unwrap_or(f64::NAN);
        println!("{bits:>5}  {sll0:>10.1} dB  {sll60:>12.1} dB");
    }
    println!("\n(manufacturing errors excluded above; with the calibrated errors");
    println!("the 2-bit row lands in the paper's measured −4…−6 dB band)");
}
