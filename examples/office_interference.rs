//! The paper's motivating scenario (§2: "dense deployment scenarios"):
//! an office with three WiGig docking links and one WiHD video link
//! sharing the 60 GHz channel. How much do the "allegedly non-interfering"
//! directional links actually cost each other?
//!
//! ```text
//! cargo run --example office_interference
//! ```

use mmwave_channel::Environment;
use mmwave_geom::{Angle, Point, Room};
use mmwave_mac::{Device, Net, NetConfig};
use mmwave_phy::AntennaPattern;
use mmwave_sim::time::SimTime;
use mmwave_transport::{Stack, TcpConfig};

struct Link {
    name: &'static str,
    dock: usize,
    laptop: usize,
}

fn build(with_wihd: bool, seed: u64) -> (Stack, Vec<Link>, Vec<u16>, usize) {
    let mut net = Net::new(
        Environment::new(Room::open_space()),
        NetConfig {
            seed,
            ..NetConfig::default()
        },
    );
    // Three desks in a row, 2.5 m apart, links running "north".
    let mut links = Vec::new();
    for (i, name) in ["desk A", "desk B", "desk C"].iter().enumerate() {
        let x = i as f64 * 2.5;
        let dock = net.add_device(Device::wigig_dock(
            net.ctx(),
            name,
            Point::new(x, 0.0),
            Angle::from_degrees(90.0),
            13 + i as u64 * 2,
        ));
        let laptop = net.add_device(Device::wigig_laptop(
            net.ctx(),
            name,
            Point::new(x, 4.0),
            Angle::from_degrees(-90.0),
            11 + i as u64 * 2,
        ));
        net.associate_instantly(dock, laptop);
        links.push(Link { name, dock, laptop });
    }
    // A wireless-HDMI media link crossing behind the desks.
    let hdmi_tx = net.add_device(Device::wihd_source(
        net.ctx(),
        "media",
        Point::new(6.5, 0.5),
        Angle::from_degrees(90.0),
        21,
    ));
    let hdmi_rx = net.add_device(Device::wihd_sink(
        net.ctx(),
        "media",
        Point::new(6.5, 7.0),
        Angle::from_degrees(-90.0),
        22,
    ));
    net.pair_wihd_instantly(hdmi_tx, hdmi_rx);
    if !with_wihd {
        net.set_video(hdmi_tx, false);
    }
    let mon = net.add_monitor(
        Point::new(3.0, 2.0),
        Angle::ZERO,
        AntennaPattern::isotropic(3.0),
        -70.0,
    );
    net.txlog_mut().set_enabled(false);
    let mut stack = Stack::new(net);
    let flows: Vec<u16> = links
        .iter()
        .map(|l| stack.add_flow(TcpConfig::bulk(l.dock, l.laptop, 192 * 1024)))
        .collect();
    (stack, links, flows, mon)
}

fn main() {
    let horizon = SimTime::from_secs(2);
    for (label, with_wihd) in [("WiHD off", false), ("WiHD on ", true)] {
        let (mut stack, links, flows, mon) = build(with_wihd, 7);
        stack.run_until(horizon);
        print!("{label} |");
        for (l, f) in links.iter().zip(&flows) {
            let g = stack
                .flow_stats(*f)
                .mean_goodput_mbps(SimTime::from_millis(300), horizon);
            let st = stack.net.device(l.dock).stats;
            print!(" {}: {g:>4.0} Mb/s ({} retx)", l.name, st.data_retx);
        }
        println!(
            " | channel busy {:.0}%",
            stack
                .net
                .monitor_utilization(mon, SimTime::from_millis(300))
                * 100.0
        );
    }
    println!();
    println!("The desk nearest the media link pays for the WiHD system's blind");
    println!("transmissions — the paper's §4.4 in one office.");
}
