//! The paper's §5 design principles, running: assess each device's
//! realized beam pattern and pick its MAC posture, build the
//! reflection-aware interference map, and trim transmit power where the
//! link has headroom.
//!
//! ```text
//! cargo run --example design_principles
//! ```

use mmwave_core::design::{geometric_mac, mac_switching, power_control};
use mmwave_core::scenarios::{interference_floor, reflector_rig};
use mmwave_geom::Angle;
use mmwave_mac::NetConfig;
use mmwave_sim::ctx::SimCtx;

fn main() {
    let cfg = NetConfig {
        seed: 5,
        enable_fading: false,
        ..NetConfig::default()
    };

    println!("== principle 1: choose the MAC behaviour per beam pattern ==");
    let mut f = interference_floor(&SimCtx::new(), 1.5, Angle::from_degrees(50.0), cfg.clone());
    for (name, dev) in [
        ("dock A (aligned)", f.dock_a),
        ("dock B (rotated)", f.dock_b),
    ] {
        let sector = f.net.device(dev).wigig().expect("wigig").tx_sector;
        let a = mac_switching::assess(f.net.device(dev).pattern(mmwave_mac::PatKey::Dir(sector)));
        let choice = mac_switching::apply_to_device(&mut f.net, dev).expect("wigig");
        println!(
            "  {name}: HPBW {:.0}°, SLL {:.1} dB, {} strong lobes → {:?} (CS {} dBm)",
            a.hpbw_deg,
            a.sll_db,
            a.strong_lobes,
            choice,
            choice.cs_threshold_dbm()
        );
    }

    println!("\n== principle 2: include reflections in the interference map ==");
    let r = reflector_rig(&SimCtx::new(), cfg.clone());
    let blind = geometric_mac::predicted_interference_dbm(&r.net, r.hdmi_tx, r.dock, 0);
    let aware = geometric_mac::predicted_interference_dbm(&r.net, r.hdmi_tx, r.dock, 2);
    println!("  Fig. 7 rig, WiHD TX → dock: geometry-only map predicts {blind:.0} dBm (no");
    println!("  conflict); the 2-reflection map predicts {aware:.1} dBm — the conflict that");
    println!("  actually costs ≈20% TCP throughput in Fig. 23.");

    println!("\n== principle 4: trim power in quasi-static scenes ==");
    let mut p = mmwave_core::scenarios::point_to_point(&SimCtx::new(), 2.0, cfg);
    let before = power_control::link_snr_db(&mut p.net, p.dock).expect("link");
    let trim = power_control::apply_to_device(&mut p.net, p.laptop).expect("wigig");
    let after = power_control::link_snr_db(&mut p.net, p.dock).expect("link");
    println!(
        "  2 m link: SNR {before:.1} dB → trim {trim:.1} dB → {after:.1} dB, still 16-QAM 5/8;"
    );
    println!("  every trimmed dB is a dB less interference at the neighbours.");
}
