//! The paper's measurement methodology end to end: park a virtual Vubiq
//! next to an active link, record an oscilloscope trace, *undersample* it
//! at 10⁸ S/s (decoding impossible — exactly the paper's constraint), and
//! recover the frame flow purely from timing and amplitude.
//!
//! ```text
//! cargo run --example protocol_trace
//! ```

use mmwave_capture::classify::split_by_amplitude;
use mmwave_capture::{detect_frames, DetectorConfig};
use mmwave_core::replay::{replay_trace, TapConfig};
use mmwave_core::scenarios::point_to_point;
use mmwave_geom::{Angle, Point};
use mmwave_mac::NetConfig;
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::rng::SimRng;
use mmwave_sim::time::SimTime;

fn main() {
    // An active 2 m link with a short data exchange.
    let mut p = point_to_point(
        &SimCtx::new(),
        2.0,
        NetConfig {
            seed: 11,
            ..NetConfig::default()
        },
    );
    for burst in 0..4u64 {
        p.net.run_until(SimTime::from_micros(600 * burst));
        for i in 0..12u64 {
            p.net.push_mpdu(p.dock, 1500, burst * 100 + i);
        }
    }
    p.net.run_until(SimTime::from_millis(3));

    // The Vubiq with its open waveguide, placed behind the dock and
    // pointed at the laptop's lid (§3.2's reflector trick gives the two
    // link directions distinct amplitudes).
    let tap = TapConfig::waveguide(Point::new(-0.4, 0.15), Angle::ZERO);
    let trace = replay_trace(&p.net, &tap, SimTime::ZERO, SimTime::from_millis(3));
    println!(
        "ground truth: {} transmissions in 3 ms",
        trace.segments().len()
    );

    // Oscilloscope capture: undersampled analog output + noise.
    let mut rng = SimRng::root(1).stream("scope");
    let (period, samples) = trace.sample(1e8, &mut rng);
    println!(
        "captured {} samples at 100 MS/s ({} per sample)",
        samples.len(),
        period
    );

    // The paper's offline analysis: threshold detection, then separate the
    // two devices by amplitude.
    let frames = detect_frames(
        &samples,
        period,
        SimTime::ZERO,
        trace.noise_rms_v,
        &DetectorConfig::default(),
    );
    let (classes, lo, hi) = split_by_amplitude(&frames);
    println!(
        "detector found {} frames; amplitude clusters at {:.3} V / {:.3} V",
        frames.len(),
        lo,
        hi
    );
    println!();
    println!(
        "{:>10}  {:>9}  {:>8}  {:>9}",
        "start", "duration", "volts", "direction"
    );
    for (f, c) in frames.iter().zip(&classes).take(24) {
        println!(
            "{:>10}  {:>9}  {:>7.3}  {:>9}",
            format!("{}", f.start),
            format!("{}", f.duration()),
            f.mean_amplitude_v,
            match c {
                mmwave_capture::AmplitudeClass::High => "laptop",
                mmwave_capture::AmplitudeClass::Low => "dock",
            }
        );
    }
    if frames.len() > 24 {
        println!("… {} more", frames.len() - 24);
    }
    println!();
    println!("short ≈5 µs frames are single MPDUs; 15–25 µs frames are A-MPDU");
    println!("aggregates; ~2 µs frames are RTS/CTS/ACKs (compare Fig. 8).");
}
