//! Integration: the interference experiments (Figs. 21–23) reproduce the
//! paper's shapes in quick mode. These are the heaviest campaigns (multi-
//! system scenarios over seconds of simulated time).

use mmwave_core::experiments;

fn assert_passes(id: &str) {
    let report = experiments::run(id, true, 1).expect("known experiment id");
    assert!(
        report.passed(),
        "{id} violated its shape checks:\n{}\noutput:\n{}",
        report.violations.join("\n"),
        report.output
    );
}

#[test]
fn fig21_frame_level_interference() {
    assert_passes("fig21");
}

#[test]
fn fig22_side_lobe_interference() {
    assert_passes("fig22");
}

#[test]
fn fig23_reflection_interference() {
    assert_passes("fig23");
}
