//! Integration: the protocol-analysis experiments (Table 1, Figs. 3, 8, 15
//! and the Fig. 9–11 throughput sweep) reproduce the paper's shapes.
//!
//! Every test runs the same code path as `cargo run --bin experiments`
//! (quick mode) and asserts that no shape check was violated.

use mmwave_core::experiments;

fn assert_passes(id: &str) {
    let report = experiments::run(id, true, 1).expect("known experiment id");
    assert!(
        report.passed(),
        "{id} violated its shape checks:\n{}\noutput:\n{}",
        report.violations.join("\n"),
        report.output
    );
}

#[test]
fn table1_frame_periodicity() {
    assert_passes("table1");
}

#[test]
fn fig03_discovery_frame() {
    assert_passes("fig03");
}

#[test]
fn fig08_frame_flow() {
    assert_passes("fig08");
}

#[test]
fn fig09_frame_length_cdf() {
    assert_passes("fig09");
}

#[test]
fn fig10_long_frame_fraction() {
    assert_passes("fig10");
}

#[test]
fn fig11_medium_usage() {
    assert_passes("fig11");
}

#[test]
fn aggregation_gain() {
    assert_passes("aggr");
}

#[test]
fn fig15_wihd_frame_flow() {
    assert_passes("fig15");
}
