//! Cross-crate pipeline tests: the full stack — geometry → PHY → channel →
//! MAC → transport → capture — wired together the way the experiments use
//! it, validated against ground truth the layers can check on each other.

use mmwave_capture::{detect_frames, utilization, DetectorConfig};
use mmwave_core::replay::{replay_trace, TapConfig};
use mmwave_core::scenarios::{self, point_to_point};
use mmwave_geom::{Angle, Point};
use mmwave_mac::NetConfig;
use mmwave_sim::ctx::SimCtx;
use mmwave_sim::rng::SimRng;
use mmwave_sim::time::SimTime;
use mmwave_transport::{Stack, TcpConfig};

fn quiet(seed: u64) -> NetConfig {
    NetConfig {
        seed,
        enable_fading: false,
        ..NetConfig::default()
    }
}

/// The detector, run on a *sampled* (undersampled, noisy) waveform of a
/// real MAC exchange, must agree with the MAC's own busy-time accounting.
#[test]
fn detector_matches_mac_ground_truth() {
    let mut p = point_to_point(&SimCtx::new(), 2.0, quiet(3));
    for i in 0..60u64 {
        p.net.push_mpdu(p.dock, 1500, i);
    }
    p.net.run_until(SimTime::from_millis(2));
    let tap = TapConfig::waveguide(Point::new(1.0, 0.4), Angle::from_degrees(-90.0));
    let trace = replay_trace(&p.net, &tap, SimTime::ZERO, SimTime::from_millis(2));

    // Ground truth from the segments.
    let truth = trace
        .ground_truth_busy()
        .utilization(SimTime::ZERO, SimTime::from_millis(2));

    // Exact segment-level estimate at a generous threshold.
    let seg_est = utilization(&trace, 0.02);

    // Sampled-waveform estimate through the full detector.
    let mut rng = SimRng::root(5).stream("scope");
    let (period, samples) = trace.sample(1e8, &mut rng);
    let frames = detect_frames(
        &samples,
        period,
        SimTime::ZERO,
        trace.noise_rms_v,
        &DetectorConfig::default(),
    );
    let detected: f64 = frames.iter().map(|f| f.duration().as_secs_f64()).sum();
    let det_est = detected / 0.002;

    assert!(truth > 0.1, "workload produced near-idle channel: {truth}");
    assert!(
        (seg_est - truth).abs() < 0.05,
        "segment estimate {seg_est} vs truth {truth}"
    );
    assert!(
        (det_est - truth).abs() < 0.12,
        "detector estimate {det_est} vs truth {truth}"
    );
}

/// TCP over a trained link delivers exactly the bytes it acknowledges, and
/// the MAC's delivered-byte counter agrees with the receiver's.
#[test]
fn byte_accounting_is_consistent() {
    let p = point_to_point(&SimCtx::new(), 2.0, quiet(4));
    let (dock, laptop) = (p.dock, p.laptop);
    let mut stack = Stack::new(p.net);
    let flow = stack.add_flow(TcpConfig {
        total_bytes: Some(30_000_000),
        ..TcpConfig::bulk(dock, laptop, 256 * 1024)
    });
    stack.run_until(SimTime::from_secs(2));
    assert!(stack.flow_finished(flow), "30 MB should complete in 2 s");
    let acked = stack.flow_stats(flow).bytes_acked;
    let received = stack.flow_stats(flow).bytes_received;
    assert!(
        received >= acked,
        "receiver cannot have less than the sender saw acked"
    );
    // MAC counter counts MPDU payloads delivered to the laptop, including
    // any duplicates from lost ACKs — never less than TCP's count.
    assert!(stack.net.device(laptop).stats.bytes_rx >= acked);
}

/// Blocking the line of sight mid-run: the link retrains onto the wall
/// reflection at the next beacon (the Fig. 5/20 story, but dynamic).
#[test]
fn reflection_rescues_blocked_link() {
    let mut b = scenarios::blocked_los_link(&SimCtx::new(), quiet(6));
    // The scenario starts blocked already; verify the trained path works
    // by moving data.
    for i in 0..40u64 {
        b.net.push_mpdu(b.dock, 1500, i);
    }
    b.net.run_until(SimTime::from_millis(20));
    assert_eq!(
        b.net.device(b.laptop).stats.mpdus_rx,
        40,
        "all MPDUs over the bounce"
    );
    // And the trained sector indeed points at the wall, not the blockage.
    let w = b.net.device(b.dock).wigig().expect("wigig");
    let steer = w.codebook.sector(w.tx_sector).steer;
    assert!(
        steer.degrees() > 10.0,
        "dock sector {} should aim up at the wall",
        steer
    );
}

/// The same scenario built twice with the same seed produces bit-identical
/// transmission logs — the property every regression test here relies on.
#[test]
fn scenarios_are_deterministic() {
    let run = || {
        let mut f = scenarios::interference_floor(&SimCtx::new(), 1.0, Angle::ZERO, quiet(9));
        for i in 0..50u64 {
            f.net.push_mpdu(f.dock_a, 1500, i);
        }
        f.net.run_until(SimTime::from_millis(30));
        let log: Vec<(u64, u64, usize)> = f
            .net
            .txlog()
            .entries()
            .iter()
            .map(|e| (e.start.as_nanos(), e.end.as_nanos(), e.src))
            .collect();
        log
    };
    assert_eq!(run(), run());
}

/// Monitors and replay traces agree: the busy fraction a monitor records
/// matches the replayed trace's above-threshold utilization.
#[test]
fn monitor_agrees_with_replay() {
    let mut p = point_to_point(&SimCtx::new(), 2.0, quiet(12));
    let pos = Point::new(1.0, 0.8);
    let mon = p.net.add_monitor(
        pos,
        Angle::from_degrees(-90.0),
        mmwave_phy::open_waveguide(),
        -60.0,
    );
    for i in 0..200u64 {
        p.net.push_mpdu(p.dock, 1500, i);
    }
    p.net.run_until(SimTime::from_millis(5));
    let mon_util = p.net.monitor_utilization(mon, SimTime::ZERO);

    let tap = TapConfig::waveguide(pos, Angle::from_degrees(-90.0));
    let trace = replay_trace(&p.net, &tap, SimTime::ZERO, SimTime::from_millis(5));
    // −60 dBm at the monitor corresponds to the tap's voltage for −60 dBm.
    let threshold_v = tap.receiver.power_to_volts(-60.0);
    let replay_util = utilization(&trace, threshold_v);
    assert!(
        (mon_util - replay_util).abs() < 0.02,
        "monitor {mon_util} vs replay {replay_util}"
    );
}

/// A person steps into the line of sight mid-run. With a reflecting wall
/// nearby, the loss-driven realignment finds the bounce path at the next
/// beacons and the link survives — the dynamic version of Fig. 5/20 and
/// the blockage behaviour [13]/[17] describe.
#[test]
fn human_blockage_triggers_realignment_rescue() {
    use mmwave_geom::{Material, Room, Segment, Wall};
    let mut room = Room::open_space();
    room.add_wall(Wall::new(
        Segment::new(Point::new(-1.0, 1.5), Point::new(5.0, 1.5)),
        Material::Brick,
        "side wall",
    ));
    let env = mmwave_channel::Environment::new(room);
    let mut net = mmwave_mac::Net::new(env, quiet(21));
    let dock = net.add_device(mmwave_mac::Device::wigig_dock(
        net.ctx(),
        "dock",
        Point::new(0.0, 0.0),
        Angle::ZERO,
        13,
    ));
    let laptop = net.add_device(mmwave_mac::Device::wigig_laptop(
        net.ctx(),
        "laptop",
        Point::new(3.0, 0.0),
        Angle::from_degrees(180.0),
        11,
    ));
    net.associate_instantly(dock, laptop);
    let before = net.device(dock).wigig().expect("wigig").tx_sector;
    // Traffic flows over the LoS.
    for i in 0..50u64 {
        net.push_mpdu(dock, 1500, i);
    }
    net.run_until(SimTime::from_millis(10));
    assert_eq!(net.device(laptop).stats.mpdus_rx, 50);

    // A person walks into the direct path.
    net.env.room.add_obstacle(
        Segment::new(Point::new(1.5, -0.5), Point::new(1.5, 0.6)),
        Material::Human,
        "person",
    );
    net.invalidate_geometry();
    for i in 50..200u64 {
        net.push_mpdu(dock, 1500, i);
    }
    net.run_until(SimTime::from_millis(120));
    // The link realigned (new sector, pointing at the wall) and still
    // delivers.
    let w = net.device(dock).wigig().expect("wigig");
    assert_eq!(
        w.state,
        mmwave_mac::device::WigigState::Associated,
        "link survived"
    );
    assert_ne!(
        w.tx_sector, before,
        "beam realigned away from the blocked LoS"
    );
    assert!(
        w.codebook.sector(w.tx_sector).steer.degrees() > 8.0,
        "new sector {} aims at the wall bounce",
        w.codebook.sector(w.tx_sector).steer
    );
    assert!(
        net.device(laptop).stats.mpdus_rx >= 190,
        "delivered {} of 200",
        net.device(laptop).stats.mpdus_rx
    );
    assert!(
        net.device(dock).stats.retrains >= 2,
        "a loss-driven retrain happened"
    );
}
