//! Integration: beam-pattern and reflection experiments (Figs. 12–14,
//! 16–20) reproduce the paper's shapes in quick mode.

use mmwave_core::experiments;

fn assert_passes(id: &str) {
    let report = experiments::run(id, true, 1).expect("known experiment id");
    assert!(
        report.passed(),
        "{id} violated its shape checks:\n{}\noutput:\n{}",
        report.violations.join("\n"),
        report.output
    );
}

#[test]
fn fig12_mcs_with_low_traffic() {
    assert_passes("fig12");
}

#[test]
fn fig13_throughput_vs_distance() {
    assert_passes("fig13");
}

#[test]
fn fig14_amplitude_and_rate() {
    assert_passes("fig14");
}

#[test]
fn fig16_quasi_omni_patterns() {
    assert_passes("fig16");
}

#[test]
fn fig17_directional_patterns() {
    assert_passes("fig17");
}

#[test]
fn fig18_reflections_wigig() {
    assert_passes("fig18");
}

#[test]
fn fig19_reflections_wihd() {
    assert_passes("fig19");
}

#[test]
fn fig20_blocked_los() {
    assert_passes("fig20");
}
