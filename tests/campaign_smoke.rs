//! Workspace smoke test: a small quick campaign run fully in-process,
//! with its artifacts written to disk and parsed back (schema round-trip).

use mmwave_campaign::{artifact, json::Json, runner, CampaignConfig, RunStatus};
use mmwave_core::experiments;

#[test]
fn two_experiment_campaign_roundtrips() {
    let cfg = CampaignConfig {
        experiments: ["table1", "fig08"]
            .iter()
            .map(|id| experiments::find(id).expect("registered"))
            .collect(),
        seeds: vec![1],
        quick: true,
        jobs: 2,
        cc: None,
        prune: None,
    };
    let result = runner::run(&cfg);
    assert_eq!(result.records.len(), 2);

    let dir = std::env::temp_dir().join(format!("campaign-smoke-{}", std::process::id()));
    let manifest_path = artifact::write_artifacts(&result, &dir).expect("write artifacts");

    // Manifest parses and indexes both runs.
    let manifest = Json::parse(&std::fs::read_to_string(&manifest_path).expect("read"))
        .expect("manifest parses");
    assert_eq!(
        manifest.get("schema").and_then(Json::as_str),
        Some(artifact::MANIFEST_SCHEMA)
    );
    let runs = manifest
        .get("runs")
        .and_then(Json::as_arr)
        .expect("runs index");
    assert_eq!(runs.len(), 2);

    // Every indexed artifact exists and round-trips into a RunRecord that
    // matches the in-memory one.
    for (entry, record) in runs.iter().zip(&result.records) {
        let rel = entry
            .get("artifact")
            .and_then(Json::as_str)
            .expect("artifact path");
        let text = std::fs::read_to_string(dir.join(rel)).expect("run artifact exists");
        let parsed =
            artifact::run_from_json(&Json::parse(&text).expect("run parses")).expect("run decodes");
        assert_eq!(parsed.experiment, record.experiment);
        assert_eq!(parsed.seed, record.seed);
        assert_eq!(parsed.status, record.status);
        assert_eq!(parsed.output, record.output);
        assert_eq!(parsed.engine, record.engine);
        // The quick campaigns actually simulate something.
        assert!(
            parsed.engine.events_popped > 0,
            "{} popped no events",
            parsed.experiment
        );
    }

    // These two experiments are the repo's stable fast ones; the smoke
    // test asserts they pass so campaign wiring failures (wrong seed or
    // quick flag plumbing) surface here.
    assert!(
        result.records.iter().all(|r| r.status == RunStatus::Pass),
        "statuses: {:?}",
        result
            .records
            .iter()
            .map(|r| (r.experiment.clone(), r.status))
            .collect::<Vec<_>>()
    );

    std::fs::remove_dir_all(&dir).ok();
}
